#include "service/campaign_request.hpp"

#include <cstdio>
#include <stdexcept>
#include <string_view>

#include "obs/ledger.hpp"
#include "service/json_writer.hpp"

namespace glitchmask::service {

namespace {

[[noreturn]] void bad_member(const std::string& name, const char* why) {
    throw std::runtime_error("campaign request: member '" + name + "' " + why);
}

std::uint64_t require_u64(const eval::JsonValue& v, const std::string& name) {
    if (v.kind != eval::JsonValue::Kind::kUnsigned)
        bad_member(name, "must be a non-negative integer");
    return v.unsigned_value;
}

double require_number(const eval::JsonValue& v, const std::string& name) {
    if (v.kind != eval::JsonValue::Kind::kUnsigned &&
        v.kind != eval::JsonValue::Kind::kNumber)
        bad_member(name, "must be a number");
    return v.as_number();
}

bool require_bool(const eval::JsonValue& v, const std::string& name) {
    if (v.kind != eval::JsonValue::Kind::kBool)
        bad_member(name, "must be true or false");
    return v.boolean;
}

const std::string& require_string(const eval::JsonValue& v,
                                  const std::string& name) {
    if (v.kind != eval::JsonValue::Kind::kString)
        bad_member(name, "must be a string");
    return v.string;
}

core::InputSequence parse_sequence(const std::string& text) {
    if (text.size() != 4)
        throw std::runtime_error(
            "campaign request: 'sequence' must be 4 digits 0-3 (e.g. "
            "\"0213\")");
    core::InputSequence sequence{};
    bool seen[4] = {};
    for (std::size_t i = 0; i < 4; ++i) {
        const int slot = text[i] - '0';
        if (slot < 0 || slot > 3 || seen[slot])
            throw std::runtime_error(
                "campaign request: 'sequence' must be a permutation of "
                "0123");
        seen[slot] = true;
        sequence[i] = static_cast<core::ShareId>(slot);
    }
    return sequence;
}

std::string sequence_text(const core::InputSequence& sequence) {
    std::string text;
    for (const core::ShareId slot : sequence)
        text += static_cast<char>('0' + static_cast<int>(slot));
    return text;
}

const char* flavor_name(des::CoreFlavor flavor) noexcept {
    switch (flavor) {
        case des::CoreFlavor::FF: return "ff";
        case des::CoreFlavor::PD: return "pd";
        case des::CoreFlavor::DOM: return "dom";
    }
    return "ff";
}

std::optional<des::CoreFlavor> parse_flavor(std::string_view name) noexcept {
    if (name == "ff") return des::CoreFlavor::FF;
    if (name == "pd") return des::CoreFlavor::PD;
    if (name == "dom") return des::CoreFlavor::DOM;
    return std::nullopt;
}

eval::SequenceExperimentConfig sequence_config(const CampaignRequest& r) {
    eval::SequenceExperimentConfig config;
    config.replicas = r.replicas;
    config.traces = r.traces;
    config.noise_sigma = r.noise_sigma;
    config.seed = r.seed;
    config.placement_seed = r.placement_seed;
    config.max_test_order = r.max_test_order;
    config.workers = r.workers;
    config.block_size = r.block_size;
    config.lanes = r.lanes;
    return config;
}

eval::GadgetTvlaConfig gadget_config(const CampaignRequest& r) {
    eval::GadgetTvlaConfig config;
    config.gadget = r.gadget;
    config.replicas = r.replicas;
    config.traces = r.traces;
    config.noise_sigma = r.noise_sigma;
    config.seed = r.seed;
    config.placement_seed = r.placement_seed;
    config.max_test_order = r.max_test_order;
    config.workers = r.workers;
    config.block_size = r.block_size;
    config.lanes = r.lanes;
    return config;
}

eval::DesTvlaConfig des_config(const CampaignRequest& r) {
    eval::DesTvlaConfig config;
    config.traces = r.traces;
    config.noise_sigma = r.noise_sigma;
    config.seed = r.seed;
    config.placement_seed = r.placement_seed;
    config.prng_on = r.prng_on;
    config.fixed_plaintext = r.fixed_plaintext;
    config.key = r.key;
    config.max_test_order = r.max_test_order;
    config.workers = r.workers;
    config.block_size = r.block_size;
    config.lanes = r.lanes;
    return config;
}

}  // namespace

const char* campaign_kind_name(CampaignKind kind) noexcept {
    switch (kind) {
        case CampaignKind::SequenceTvla: return "sequence_tvla";
        case CampaignKind::GadgetTvla: return "gadget_tvla";
        case CampaignKind::DesTvla: return "des_tvla";
        case CampaignKind::MeanPower: return "mean_power";
    }
    return "unknown";
}

std::optional<CampaignKind> parse_campaign_kind(std::string_view name) noexcept {
    if (name == "sequence_tvla") return CampaignKind::SequenceTvla;
    if (name == "gadget_tvla") return CampaignKind::GadgetTvla;
    if (name == "des_tvla") return CampaignKind::DesTvla;
    if (name == "mean_power") return CampaignKind::MeanPower;
    return std::nullopt;
}

CampaignRequest default_request(CampaignKind kind) {
    CampaignRequest request;
    request.kind = kind;
    switch (kind) {
        case CampaignKind::SequenceTvla: {
            const eval::SequenceExperimentConfig defaults;
            request.traces = defaults.traces;
            request.noise_sigma = defaults.noise_sigma;
            request.max_test_order = defaults.max_test_order;
            request.replicas = defaults.replicas;
            break;
        }
        case CampaignKind::GadgetTvla: {
            const eval::GadgetTvlaConfig defaults;
            request.traces = defaults.traces;
            request.noise_sigma = defaults.noise_sigma;
            request.max_test_order = defaults.max_test_order;
            request.replicas = defaults.replicas;
            break;
        }
        case CampaignKind::DesTvla: {
            const eval::DesTvlaConfig defaults;
            request.traces = defaults.traces;
            request.noise_sigma = defaults.noise_sigma;
            request.max_test_order = defaults.max_test_order;
            break;
        }
        case CampaignKind::MeanPower:
            request.traces = 256;
            request.noise_sigma = 0.0;  // mean power adds no noise
            break;
    }
    return request;
}

eval::CampaignFingerprint request_fingerprint(const CampaignRequest& request) {
    switch (request.kind) {
        case CampaignKind::SequenceTvla:
            return eval::sequence_fingerprint(request.sequence,
                                              sequence_config(request));
        case CampaignKind::GadgetTvla:
            return eval::gadget_fingerprint(gadget_config(request));
        case CampaignKind::DesTvla:
            return eval::des_tvla_fingerprint(
                des_config(request),
                des::MaskedDesCore::total_cycles_for(request.flavor));
        case CampaignKind::MeanPower:
            return eval::mean_power_fingerprint(
                request.traces, request.seed, request.placement_seed,
                des::MaskedDesCore::total_cycles_for(request.flavor));
    }
    throw std::runtime_error("campaign request: unknown kind");
}

std::string fingerprint_hex(const eval::CampaignFingerprint& fingerprint) {
    // One canonical spelling: the ledger's history lookups and the
    // daemon's cache/spool keys must agree on the hex form.
    return obs::fingerprint_key(fingerprint);
}

std::string encode_request(const CampaignRequest& request) {
    JsonWriter w;
    w.begin_object();
    w.member("kind", campaign_kind_name(request.kind));
    w.member("priority", request.priority);
    w.member("traces", request.traces);
    w.member("noise_sigma", request.noise_sigma);
    w.member("seed", request.seed);
    w.member("placement_seed", request.placement_seed);
    w.member("max_test_order", request.max_test_order);
    w.member("block_size", request.block_size);
    w.member("lanes", static_cast<std::uint64_t>(request.lanes));
    w.member("workers", static_cast<std::uint64_t>(request.workers));
    switch (request.kind) {
        case CampaignKind::SequenceTvla:
            w.member("sequence", sequence_text(request.sequence));
            w.member("replicas", static_cast<std::uint64_t>(request.replicas));
            break;
        case CampaignKind::GadgetTvla:
            w.member("gadget", eval::gadget_name(request.gadget));
            w.member("replicas", static_cast<std::uint64_t>(request.replicas));
            break;
        case CampaignKind::DesTvla:
            w.member("flavor", flavor_name(request.flavor));
            w.member("prng_on", request.prng_on);
            w.member("fixed_plaintext", request.fixed_plaintext);
            w.member("key", request.key);
            break;
        case CampaignKind::MeanPower:
            w.member("flavor", flavor_name(request.flavor));
            break;
    }
    w.end_object();
    return w.take();
}

CampaignRequest decode_request(const eval::JsonValue& json) {
    if (json.kind != eval::JsonValue::Kind::kObject)
        throw std::runtime_error("campaign request: expected a JSON object");
    const eval::JsonValue* kind_member = json.find("kind");
    if (kind_member == nullptr)
        throw std::runtime_error("campaign request: missing 'kind'");
    const std::optional<CampaignKind> kind =
        parse_campaign_kind(require_string(*kind_member, "kind"));
    if (!kind)
        throw std::runtime_error("campaign request: unknown kind '" +
                                 kind_member->string + "'");

    CampaignRequest request = default_request(*kind);
    for (const auto& [name, value] : json.object) {
        if (name == "kind" || name == "op" || name == "id") continue;
        if (name == "priority") {
            request.priority = static_cast<int>(require_number(value, name));
        } else if (name == "traces") {
            request.traces = require_u64(value, name);
        } else if (name == "noise_sigma") {
            request.noise_sigma = require_number(value, name);
        } else if (name == "seed") {
            request.seed = require_u64(value, name);
        } else if (name == "placement_seed") {
            request.placement_seed = require_u64(value, name);
        } else if (name == "max_test_order") {
            request.max_test_order =
                static_cast<int>(require_u64(value, name));
        } else if (name == "block_size") {
            request.block_size = require_u64(value, name);
        } else if (name == "lanes") {
            request.lanes = static_cast<unsigned>(require_u64(value, name));
        } else if (name == "workers") {
            request.workers = static_cast<unsigned>(require_u64(value, name));
        } else if (name == "sequence") {
            request.sequence = parse_sequence(require_string(value, name));
        } else if (name == "replicas") {
            request.replicas = static_cast<unsigned>(require_u64(value, name));
        } else if (name == "gadget") {
            const std::optional<eval::GadgetKind> gadget =
                eval::parse_gadget(require_string(value, name));
            if (!gadget) bad_member(name, "names no known gadget");
            request.gadget = *gadget;
        } else if (name == "flavor") {
            const std::optional<des::CoreFlavor> flavor =
                parse_flavor(require_string(value, name));
            if (!flavor) bad_member(name, "must be ff, pd or dom");
            request.flavor = *flavor;
        } else if (name == "prng_on") {
            request.prng_on = require_bool(value, name);
        } else if (name == "fixed_plaintext") {
            request.fixed_plaintext = require_u64(value, name);
        } else if (name == "key") {
            request.key = require_u64(value, name);
        } else {
            bad_member(name, "is not a known request field");
        }
    }
    return request;
}

CampaignOutcome run_campaign_request(const CampaignRequest& request,
                                     eval::CampaignRunOptions run) {
    CampaignOutcome outcome;
    outcome.fingerprint = request_fingerprint(request);
    outcome.total_traces = request.traces;

    // The degradation flags live in CampaignProgress, which only
    // mean_power surfaces; observe them uniformly through the hook.
    const auto forward = run.on_degraded;
    run.on_degraded = [&outcome, forward](const char* what,
                                          const std::string& detail) {
        if (std::string_view(what) == "checkpoint_degraded")
            outcome.checkpoint_degraded = true;
        else
            outcome.snapshot_discarded = true;
        if (forward) forward(what, detail);
    };

    switch (request.kind) {
        case CampaignKind::SequenceTvla: {
            eval::SequenceExperimentConfig config = sequence_config(request);
            config.run = run;
            const eval::SequenceLeakResult result =
                eval::run_sequence_experiment(request.sequence, config);
            outcome.completed_traces = result.completed_traces;
            outcome.cancelled = result.cancelled;
            outcome.resumed = result.resumed;
            outcome.metrics = {
                {"max_abs_t_order1", result.max_abs_t1},
                {"max_abs_t_order2", result.max_abs_t2},
                {"argmax_cycle", static_cast<double>(result.argmax_cycle)},
                {"leaks_first_order", result.leaks_first_order ? 1.0 : 0.0},
            };
            break;
        }
        case CampaignKind::GadgetTvla: {
            eval::GadgetTvlaConfig config = gadget_config(request);
            config.run = run;
            const eval::GadgetTvlaResult result = eval::run_gadget_tvla(config);
            outcome.completed_traces = result.completed_traces;
            outcome.cancelled = result.cancelled;
            outcome.resumed = result.resumed;
            outcome.metrics = {
                {"max_abs_t_order1", result.max_abs_t1},
                {"max_abs_t_order2", result.max_abs_t2},
                {"argmax_cycle", static_cast<double>(result.argmax_cycle)},
                {"leaks_first_order", result.leaks_first_order ? 1.0 : 0.0},
            };
            break;
        }
        case CampaignKind::DesTvla: {
            eval::DesTvlaConfig config = des_config(request);
            config.run = run;
            const des::MaskedDesCore core(
                des::MaskedDesOptions{.flavor = request.flavor});
            const eval::DesTvlaResult result = eval::run_des_tvla(core, config);
            outcome.completed_traces = result.completed_traces;
            outcome.cancelled = result.cancelled;
            outcome.resumed = result.resumed;
            outcome.metrics = {
                {"samples", static_cast<double>(result.samples)},
                {"toggles", static_cast<double>(result.toggles)},
            };
            for (int order = 1;
                 order <= config.max_test_order && order <= 3; ++order) {
                char name[32];
                std::snprintf(name, sizeof name, "max_abs_t_order%d", order);
                outcome.metrics.emplace_back(
                    name, result.max_abs_t[static_cast<std::size_t>(order)]);
            }
            break;
        }
        case CampaignKind::MeanPower: {
            const des::MaskedDesCore core(
                des::MaskedDesOptions{.flavor = request.flavor});
            eval::CampaignProgress progress;
            const std::vector<double> trace = eval::mean_power_trace(
                core, request.traces, request.seed, request.placement_seed,
                request.workers, request.lanes, run, &progress);
            outcome.completed_traces = progress.completed_traces;
            outcome.cancelled = progress.cancelled;
            outcome.resumed = progress.resumed;
            outcome.checkpoint_degraded |= progress.checkpoint_degraded;
            outcome.snapshot_discarded |= progress.snapshot_discarded;
            double sum = 0.0, peak = 0.0;
            for (const double v : trace) {
                sum += v;
                if (v > peak) peak = v;
            }
            outcome.metrics = {
                {"samples", static_cast<double>(trace.size())},
                {"mean_power", trace.empty() ? 0.0 : sum / trace.size()},
                {"peak_power", peak},
            };
            break;
        }
    }
    return outcome;
}

}  // namespace glitchmask::service
