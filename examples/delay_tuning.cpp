// DelayUnit tuning at gadget scale (the fast version of the paper's
// Sec. V / Fig. 15 methodology).
//
// A bank of secAND2-PD gadgets runs two back-to-back multiplications per
// trace (continuous operation, no reset -- the scenario secAND2-PD is
// designed for).  Sweeping the DelayUnit size shows how larger delays
// separate the arrival times: first-order leakage fades as the unit grows
// past the routing-jitter spread, and the utilization cost rises.
//
// Flags: --progress[=seconds] for a stderr heartbeat across the sweep,
// --report <path> for a JSON run report with per-size |t| peaks and LUT
// counts.
#include <cstdio>
#include <string>

#include "core/gadgets.hpp"
#include "core/sharing.hpp"
#include "eval/run_report.hpp"
#include "leakage/tvla.hpp"
#include "netlist/area.hpp"
#include "netlist/lutmap.hpp"
#include "power/power_model.hpp"
#include "sim/clocked.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/telemetry.hpp"

using namespace glitchmask;

namespace {

struct SweepPoint {
    double t1 = 0.0;
    double t2 = 0.0;
    std::size_t luts = 0;
};

SweepPoint run_size(unsigned unit_luts, std::size_t traces,
                    telemetry::ProgressMeter* meter) {
    core::Netlist nl;
    const core::SharedNet x_in = core::shared_input(nl, "x");
    const core::SharedNet y_in = core::shared_input(nl, "y");
    const core::SharedNet x = core::reg_shares(nl, x_in);
    const core::SharedNet y = core::reg_shares(nl, y_in);
    for (unsigned k = 0; k < 24; ++k)
        (void)core::secand2_pd(nl, x, y,
                               core::PathDelayOptions{unit_luts, true},
                               "g" + std::to_string(k));
    nl.freeze();

    const sim::DelayModel dm(nl, sim::DelayConfig::spartan6());
    sim::ClockConfig clock;
    clock.period_ps = 60000;
    sim::ClockedSim sim(nl, dm, clock);
    power::PowerRecorder recorder(nl, power::PowerConfig{
                                          .bin_ps = clock.period_ps});
    sim.engine().set_sink(&recorder);

    constexpr std::size_t kCycles = 5;
    leakage::TvlaCampaign campaign(kCycles, 2);
    Xoshiro256 rng(31);
    Xoshiro256 noise(32);
    for (std::size_t t = 0; t < traces; ++t) {
        const bool fixed = rng.bit();
        sim.restart();
        recorder.begin_trace(kCycles);
        for (int op = 0; op < 2; ++op) {
            const bool classed = (op == 1) && fixed;
            const core::MaskedBit mx = core::mask_bit(classed || rng.bit(), rng);
            const core::MaskedBit my =
                core::mask_bit(classed ? true : rng.bit(), rng);
            sim.set_input(x_in.s0, mx.s0);
            sim.set_input(x_in.s1, mx.s1);
            sim.set_input(y_in.s0, my.s0);
            sim.set_input(y_in.s1, my.s1);
            sim.step(2);
        }
        campaign.add_trace(fixed, recorder.noisy_trace(noise, 0.5));
        if (meter != nullptr) meter->advance(1);
    }
    if (telemetry::enabled()) {
        telemetry::SimStats last;
        telemetry::record_sim_block(sim.engine().stats(), last);
    }
    SweepPoint point;
    point.t1 = campaign.max_abs_t(1);
    point.t2 = campaign.max_abs_t(2);
    point.luts = netlist::estimate_luts(nl).luts;
    return point;
}

}  // namespace

int main(int argc, char** argv) {
    const CliOptions cli = parse_cli(argc, argv);
    std::printf("DelayUnit tuning: security vs cost for secAND2-PD\n");
    std::printf("(24 parallel gadgets, continuous operation, 12000 traces)\n\n");
    TablePrinter table({"DelayUnit [LUTs]", "max|t1|", "max|t2|",
                        "1st order", "total LUTs"});
    constexpr unsigned kUnits[] = {1u, 2u, 4u, 7u, 10u};
    constexpr std::size_t kTraces = 12000;
    constexpr std::size_t kSweepSize = sizeof kUnits / sizeof kUnits[0];

    eval::CampaignRunOptions run_options;
    run_options.report_path = cli.report_path;
    std::uint64_t payload = eval::kFnvOffset;
    payload = eval::fnv1a64(payload, /*gadgets=*/24);
    for (const unsigned unit : kUnits) payload = eval::fnv1a64(payload, unit);
    const eval::CampaignFingerprint fingerprint{
        eval::fnv1a64_tag("delay_tuning"), /*seed=*/31, kSweepSize * kTraces,
        kTraces, payload};
    eval::RunTelemetrySession session("delay_tuning", run_options, fingerprint,
                                      kSweepSize * kTraces, /*workers=*/1,
                                      /*lanes=*/1);

    double first = 0.0;
    double last = 0.0;
    for (const unsigned unit : kUnits) {
        const SweepPoint p = run_size(unit, kTraces, session.meter());
        if (unit == 1) first = p.t1;
        last = p.t1;
        table.add_row({std::to_string(unit), TablePrinter::num(p.t1),
                       TablePrinter::num(p.t2),
                       p.t1 > 4.5 ? "LEAKS" : "no leak",
                       std::to_string(p.luts)});
        const std::string tag = "unit" + std::to_string(unit);
        session.add_metric(tag + "_max_abs_t1", p.t1);
        session.add_metric(tag + "_max_abs_t2", p.t2);
        session.add_metric(tag + "_luts", static_cast<double>(p.luts));
    }
    table.print();
    std::printf(
        "\nThe trade-off of paper Sec. V: leakage falls as the DelayUnit\n"
        "grows past the routing jitter, while the LUT cost rises; 10 LUTs\n"
        "is the paper's sweet spot.\n");
    eval::CampaignProgress progress;
    progress.completed_blocks = kSweepSize;
    progress.completed_traces = kSweepSize * kTraces;
    session.finish(progress);
    if (session.writes_report())
        std::printf("Run report: %s\n", session.report_path().c_str());
    return (first > last) ? 0 : 1;
}
