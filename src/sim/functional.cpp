#include "sim/functional.hpp"

#include <stdexcept>

namespace glitchmask::sim {

ZeroDelaySim::ZeroDelaySim(const netlist::Netlist& nl) : nl_(nl) {
    if (!nl.frozen()) throw std::runtime_error("ZeroDelaySim: netlist not frozen");
    values_.assign(nl.size(), 0);
    enable_.assign(nl.max_ctrl_group() + 1u, 0);
    reset_.assign(nl.max_ctrl_group() + 1u, 0);
    enable_[netlist::kAlwaysEnabled] = 1;
    settle();
}

void ZeroDelaySim::set_enable(CtrlGroup group, bool enabled) {
    if (group == netlist::kAlwaysEnabled)
        throw std::runtime_error("ZeroDelaySim: group 0 is always enabled");
    enable_.at(group) = enabled ? 1 : 0;
}

void ZeroDelaySim::set_reset(CtrlGroup group, bool asserted) {
    if (group == netlist::kAlwaysEnabled)
        throw std::runtime_error("ZeroDelaySim: group 0 cannot be reset");
    reset_.at(group) = asserted ? 1 : 0;
}

void ZeroDelaySim::set_input(NetId input, bool value) {
    if (nl_.cell(input).kind != netlist::CellKind::Input)
        throw std::runtime_error("ZeroDelaySim::set_input: not a primary input");
    pending_.push_back({input, value});
}

void ZeroDelaySim::set_input_bus(const Bus& bus, std::uint64_t value) {
    for (std::size_t i = 0; i < bus.size(); ++i)
        set_input(bus[i], ((value >> i) & 1u) != 0);
}

std::uint64_t ZeroDelaySim::read_bus(const Bus& bus) const {
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < bus.size(); ++i)
        if (values_[bus[i]] != 0) value |= std::uint64_t{1} << i;
    return value;
}

void ZeroDelaySim::settle() {
    for (const netlist::CellId id : nl_.topo_order()) {
        const netlist::Cell& cell = nl_.cell(id);
        switch (cell.kind) {
            case netlist::CellKind::Const0:
                values_[id] = 0;
                break;
            case netlist::CellKind::Const1:
                values_[id] = 1;
                break;
            default: {
                const unsigned pins = netlist::pin_count(cell.kind);
                bool a = false;
                bool b = false;
                bool c = false;
                if (pins > 0) a = values_[cell.in[0]] != 0;
                if (pins > 1) b = values_[cell.in[1]] != 0;
                if (pins > 2) c = values_[cell.in[2]] != 0;
                values_[id] = netlist::eval_cell(cell.kind, a, b, c) ? 1 : 0;
                break;
            }
        }
    }
}

void ZeroDelaySim::step(std::size_t cycles) {
    for (std::size_t n = 0; n < cycles; ++n) {
        // Sample flops from the settled previous-cycle values.
        std::vector<std::pair<netlist::CellId, std::uint8_t>> updates;
        for (const netlist::CellId flop : nl_.flops()) {
            const netlist::Cell& cell = nl_.cell(flop);
            std::uint8_t q = values_[flop];
            if (cell.reset != netlist::kAlwaysEnabled && reset_[cell.reset] != 0) {
                q = 0;
            } else if (enable_[cell.enable] != 0) {
                q = values_[cell.in[0]];
            }
            updates.emplace_back(flop, q);
        }
        for (const auto& [flop, q] : updates) values_[flop] = q;
        for (const PendingInput& input : pending_) values_[input.net] = input.value;
        pending_.clear();
        settle();
        ++cycle_;
    }
}

void ZeroDelaySim::restart() {
    values_.assign(values_.size(), 0);
    enable_.assign(enable_.size(), 0);
    reset_.assign(reset_.size(), 0);
    enable_[netlist::kAlwaysEnabled] = 1;
    pending_.clear();
    cycle_ = 0;
    settle();
}

}  // namespace glitchmask::sim

