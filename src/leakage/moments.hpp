// One-pass streaming central moments of arbitrary order.
//
// Higher-order univariate TVLA (Schneider & Moradi, CHES 2015) needs
// central moments up to twice the assessment order -- order-3 t-tests use
// m2..m6 -- accumulated over millions of traces without storing them.
// This accumulator implements Pebay's incremental update formulas for
// arbitrary-order central sums, plus the pairwise merge used to combine
// accumulators from parallel workers.  Numerically this is the standard
// approach used by production leakage-assessment tooling.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/snapshot.hpp"

namespace glitchmask::leakage {

class MomentAccumulator {
public:
    /// `max_order` >= 2: highest central moment that will be queried.
    explicit MomentAccumulator(int max_order = 6);

    void add(double x);

    /// Folds `values` in order -- exactly equivalent to calling add() on
    /// each element, kept as one call so the batch (bitsliced) collection
    /// path updates an accumulator with a single virtual-free hot loop.
    void add_batch(std::span<const double> values);

    /// Combines another accumulator (same max_order) into this one.
    void merge(const MomentAccumulator& other);

    void reset();

    [[nodiscard]] double count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }

    /// p-th central moment  m_p = E[(x - mean)^p],  2 <= p <= max_order.
    [[nodiscard]] double central_moment(int p) const;

    /// Population variance (= central_moment(2)).
    [[nodiscard]] double variance() const { return central_moment(2); }

    [[nodiscard]] int max_order() const noexcept {
        return static_cast<int>(sums_.size()) - 1;
    }

    /// Raw central power sums (index p >= 2; 0 and 1 unused).  Exposed so
    /// snapshot round-trips can be asserted with exact `==` -- the resume
    /// contract is bit-identity, not closeness.
    [[nodiscard]] const std::vector<double>& raw_sums() const noexcept {
        return sums_;
    }

    /// Exact binary serialization (count, mean and raw sums as IEEE-754
    /// bit patterns): decode(encode(acc)) == acc on every raw field.
    void encode(SnapshotWriter& out) const;
    [[nodiscard]] static MomentAccumulator decode(SnapshotReader& in);

private:
    double n_ = 0.0;
    double mean_ = 0.0;
    // sums_[p] = sum (x - mean)^p for p >= 2; indices 0 and 1 unused.
    std::vector<double> sums_;
};

}  // namespace glitchmask::leakage
