#include "eval/checkpoint.hpp"

#include <string>

#include "support/env.hpp"

namespace glitchmask::eval {

namespace {

[[noreturn]] void mismatch(const char* field, std::uint64_t expected,
                           std::uint64_t stored) {
    throw CampaignError(
        CampaignErrorKind::ConfigMismatch,
        std::string("resume config mismatch on field '") + field +
            "': campaign has " + std::to_string(expected) +
            ", snapshot was written with " + std::to_string(stored));
}

}  // namespace

void require_fingerprint_match(const CampaignFingerprint& expected,
                               const CampaignFingerprint& stored) {
    if (expected.kind != stored.kind)
        mismatch("kind", expected.kind, stored.kind);
    if (expected.seed != stored.seed)
        mismatch("seed", expected.seed, stored.seed);
    if (expected.traces != stored.traces)
        mismatch("traces", expected.traces, stored.traces);
    if (expected.block_size != stored.block_size)
        mismatch("block_size", expected.block_size, stored.block_size);
    if (expected.payload != stored.payload)
        mismatch("config payload hash", expected.payload, stored.payload);
}

bool attribution_enabled(const CampaignRunOptions& run) {
    return run.attribution || env_int("GLITCHMASK_ATTRIBUTION", 0) != 0;
}

void fold_attribution_fingerprint(CampaignFingerprint& fingerprint,
                                  const CampaignRunOptions& run) {
    fingerprint.payload =
        fnv1a64(fingerprint.payload, fnv1a64_tag("attribution"));
    fingerprint.payload = fnv1a64(
        fingerprint.payload, fnv1a64_tag(run.attribution_scope.c_str()));
}

CheckpointPolicy make_checkpoint_policy(const CampaignRunOptions& run,
                                        const std::string& default_id) {
    CheckpointPolicy policy;
    if (!run.checkpoint_path.empty()) {
        policy.path = run.checkpoint_path;
    } else {
        const std::string dir = env_string("GLITCHMASK_CHECKPOINT_DIR", "");
        if (!dir.empty()) {
            const std::string id =
                run.campaign_id.empty() ? default_id : run.campaign_id;
            policy.path = dir + "/" + id + ".gmsnap";
        }
    }
    if (run.checkpoint_every > 0) policy.every_blocks = run.checkpoint_every;
    policy.cancel = run.cancel;
    policy.on_checkpoint = run.on_checkpoint;
    policy.io_retry = run.io_retry;
    policy.degrade_on_io_error = run.degrade_on_io_error;
    policy.discard_corrupt_snapshot = run.discard_corrupt_snapshot;
    policy.on_degraded = run.on_degraded;
    policy.trace_parent = run.trace_parent;
    return policy;
}

SnapshotWriter begin_checkpoint(const CampaignFingerprint& fp,
                                std::uint64_t completed_blocks,
                                std::uint64_t stack_entries) {
    SnapshotWriter out;
    out.u32(kSnapshotMagic);
    out.u32(kSnapshotVersion);
    out.u64(fp.kind);
    out.u64(fp.seed);
    out.u64(fp.traces);
    out.u64(fp.block_size);
    out.u64(fp.payload);
    out.u64(completed_blocks);
    out.u64(stack_entries);
    return out;
}

CheckpointHeader read_checkpoint_header(SnapshotReader& in) {
    if (in.u32() != kSnapshotMagic)
        throw CampaignError(CampaignErrorKind::CorruptSnapshot,
                            "snapshot: bad magic (not a glitchmask snapshot)");
    const std::uint32_t version = in.u32();
    if (version != kSnapshotVersion)
        throw CampaignError(
            CampaignErrorKind::CorruptSnapshot,
            "snapshot: unsupported version " + std::to_string(version));
    CheckpointHeader header;
    header.fingerprint.kind = in.u64();
    header.fingerprint.seed = in.u64();
    header.fingerprint.traces = in.u64();
    header.fingerprint.block_size = in.u64();
    header.fingerprint.payload = in.u64();
    header.completed_blocks = in.u64();
    header.stack_entries = in.u64();
    return header;
}

}  // namespace glitchmask::eval
