// Event-driven transport-delay logic simulation.
//
// The simulator propagates individual net transitions through the
// annotated netlist:
//   * a net commit at time t fans out as pin events at t + wire(cell,pin);
//   * a pin event re-evaluates its cell with the pin values *currently
//     visible at that cell* and schedules the output at t + gate(cell).
// Because different paths have different wire/gate delays, a gate whose
// inputs change "simultaneously" at a clock edge sees them arrive at
// different times and glitches exactly as real combinational logic does
// -- the physical effect the paper's gadgets are designed around.
//
// Two coupling effects (paper Sec. VII-C) can be enabled for nets that
// the netlist marked as physically adjacent (delay-chain stages):
//   * timing coupling: a DelayBuf transition scheduled while its neighbour
//     recently switched is pushed out (opposite direction, Miller) or
//     pulled in (same direction).  This occasionally re-orders the
//     carefully sequenced arrivals of secAND2-PD -- the paper's own
//     explanation for its residual first-order leakage;
//   * energy coupling is handled by the power model (power/power_model.hpp)
//     using the neighbour values this simulator exposes.
//
// Determinism: ties in the event queue break on insertion order, and all
// jitter comes from the seeded DelayModel, so a (netlist, seed, stimulus)
// triple always reproduces the same waveforms.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/delay_model.hpp"
#include "support/telemetry.hpp"

namespace glitchmask::sim {

/// Observer for committed net transitions (power models, waveform dumps,
/// leakage probes).
class ToggleSink {
public:
    virtual ~ToggleSink() = default;
    /// `net` committed `new_value` at `time`.
    virtual void on_toggle(NetId net, TimePs time, bool new_value) = 0;
};

struct CouplingConfig {
    bool timing_enabled = false;
    /// A neighbour transition within this window perturbs a DelayBuf.
    std::uint32_t window_ps = 400;
    /// Push-out when the neighbour switched in the opposite direction.
    std::uint32_t slowdown_ps = 250;
    /// Pull-in when the neighbour switched in the same direction.
    std::uint32_t speedup_ps = 120;
};

struct SimOptions {
    /// Inertial-delay pulse filtering: a gate swallows output pulses
    /// narrower than `inertial_factor` times its propagation delay, as
    /// real CMOS gates do.  Without it every reconvergence skew -- however
    /// tiny -- would produce a full-swing glitch, grossly overestimating
    /// switching activity.
    bool inertial_filtering = true;
    double inertial_factor = 1.0;
};

class EventSimulator {
public:
    EventSimulator(const Netlist& nl, const DelayModel& dm,
                   CouplingConfig coupling = {}, SimOptions options = {});

    /// Computes the consistent steady state for "all sources low"
    /// (inputs 0, flops 0, constants at their value) without emitting
    /// toggles; resets time to 0.  Mirrors the paper's "reset all
    /// registers to 0" starting condition.
    void initialize();

    void set_sink(ToggleSink* sink) noexcept { sink_ = sink; }

    /// Drives a source net (primary input or flop output) to `value` at
    /// `time`; the change propagates through the netlist as events.
    void drive(NetId source, bool value, TimePs time);

    /// Processes all events strictly before `t_end` and advances time.
    void run_until(TimePs t_end);

    /// Processes events until the queue drains; returns settle time.
    TimePs run_to_quiescence();

    [[nodiscard]] bool value(NetId net) const noexcept {
        return out_val_[net] != 0;
    }
    /// Input pin value as currently visible at `cell` (after wire delay);
    /// this is what a flop samples at a clock edge.
    [[nodiscard]] bool pin_value(CellId cell, unsigned pin) const noexcept {
        return pin_val_[cell * 3 + pin] != 0;
    }

    [[nodiscard]] TimePs now() const noexcept { return now_; }
    [[nodiscard]] std::size_t processed_events() const noexcept {
        return processed_;
    }
    [[nodiscard]] const Netlist& nl() const noexcept { return nl_; }

    /// Cumulative activity counters over the simulator's lifetime (like
    /// processed_events, they survive initialize()); the campaign runtime
    /// folds per-block deltas into the telemetry registry.  A *glitch* is
    /// a transient toggle: the 2nd+ commit of a net within the current
    /// activity window (one clock cycle under ClockedSim).
    [[nodiscard]] telemetry::SimStats stats() const noexcept {
        return telemetry::SimStats{processed_, toggles_, glitches_,
                                   inertial_cancels_, queue_peak_};
    }

    /// Starts a new glitch-accounting window (ClockedSim calls this at
    /// every clock edge).  Pure bookkeeping -- never affects simulation.
    void begin_activity_window() noexcept { window_start_ = now_; }

    /// Most recent committed transition on `net` (time, direction);
    /// exposed for the power model's coupling term.
    [[nodiscard]] TimePs last_toggle_time(NetId net) const noexcept {
        return last_toggle_[net];
    }

private:
    struct Event {
        TimePs time;
        std::uint64_t seq;
        CellId cell;
        std::uint8_t pin;     // 0xFF = gate output commit, 0xFE = source drive
        std::uint8_t value;
    };
    struct PendingCommit {
        TimePs time;
        std::uint64_t seq;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            return (a.time != b.time) ? a.time > b.time : a.seq > b.seq;
        }
    };

    void commit_output(const Event& ev);
    void update_pin(const Event& ev);
    void schedule_output(CellId cell, bool value, TimePs at);
    [[nodiscard]] std::uint32_t effective_gate_delay(CellId cell, bool new_value,
                                                     TimePs now) const;

    const Netlist& nl_;
    const DelayModel& dm_;
    CouplingConfig coupling_;
    SimOptions options_;
    ToggleSink* sink_ = nullptr;

    std::vector<std::uint8_t> out_val_;
    std::vector<std::uint8_t> pin_val_;        // 3 per cell
    std::vector<std::uint8_t> last_sched_out_; // last scheduled output value
    std::vector<TimePs> last_sched_time_;      // monotonic commit guard
    std::vector<std::vector<PendingCommit>> pending_;  // in-flight commits
    std::vector<TimePs> last_toggle_;
    std::vector<std::uint8_t> last_toggle_dir_;

    // First coupling partner per net (kNoNet when uncoupled).  Multiple
    // partners collapse to the first registered one -- adjacent chains in
    // this library are pairwise.
    std::vector<NetId> partner_;

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::uint64_t seq_ = 0;
    TimePs now_ = 0;
    std::size_t processed_ = 0;

    // Telemetry counters (see stats()); plain members, negligible cost.
    std::uint64_t toggles_ = 0;
    std::uint64_t glitches_ = 0;
    std::uint64_t inertial_cancels_ = 0;
    std::uint64_t queue_peak_ = 0;
    TimePs window_start_ = 0;  // glitch-accounting window (one clock cycle)
};

}  // namespace glitchmask::sim
