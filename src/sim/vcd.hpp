// VCD (Value Change Dump) waveform writer.
//
// A ToggleSink that streams every committed net transition into a
// standard VCD file, viewable in GTKWave & friends.  Useful for debugging
// the arrival-order properties the paper's gadgets live on: the glitches,
// the DelayUnit separations, and the FSM enable schedules are all plainly
// visible in the waveform.
//
// Either dump everything or pass an explicit watch list (recommended for
// the DES cores -- 10k nets make heavy files).
//
// A GlitchMarkerConfig adds a synthetic companion signal for one chosen
// net (typically the top culprit from leakage attribution): the marker
// `<name>_glitchmark` is high exactly while that net is glitching --
// i.e. from its second transition inside a clock window until the window
// ends -- so the flagged transitions stand out in the viewer without
// counting edges by hand.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace glitchmask::sim {

/// Companion marker for one culprit net (see file comment).  Disabled
/// when `net` is kNoNet or `window_ps` is 0.
struct GlitchMarkerConfig {
    netlist::NetId net = netlist::kNoNet;
    TimePs window_ps = 0;
};

class VcdWriter final : public ToggleSink {
public:
    /// Dumps all nets of `nl` to `path`.  Throws on I/O error.
    VcdWriter(const netlist::Netlist& nl, const std::string& path);

    /// Dumps only `watch` (ids into `nl`).  `marker` optionally adds the
    /// glitch-marker companion signal (its net need not be in `watch`).
    VcdWriter(const netlist::Netlist& nl, const std::string& path,
              const std::vector<netlist::NetId>& watch,
              GlitchMarkerConfig marker = {});

    void on_toggle(netlist::NetId net, TimePs time, bool value) override;

    /// Emits the initial $dumpvars block with the given values; call once
    /// after the simulator has been initialized (all-zero reset state is
    /// assumed when never called).
    void dump_initial(const EventSimulator& sim);

    /// Flushes and closes the file, throwing std::runtime_error if any
    /// write (including the flush) failed -- a silently truncated dump
    /// looks like a clean simulation end in the viewer.  The destructor
    /// closes too but swallows the error.
    void close();

    ~VcdWriter() override;

private:
    void write_header(const netlist::Netlist& nl);
    [[nodiscard]] const std::string& code_of(netlist::NetId net) const {
        return codes_[net];
    }

    void emit(TimePs time, bool value, const std::string& code);

    std::ofstream out_;
    std::vector<std::string> codes_;   // empty string = not watched
    std::vector<netlist::NetId> watch_;
    TimePs last_time_ = ~TimePs{0};
    GlitchMarkerConfig marker_;
    std::string marker_code_;          // empty = no marker
    TimePs marker_window_ = ~TimePs{0};
    unsigned marker_toggles_ = 0;      // culprit transitions this window
    bool marker_high_ = false;
};

}  // namespace glitchmask::sim
