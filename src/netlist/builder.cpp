#include "netlist/builder.hpp"

#include <algorithm>

namespace glitchmask::netlist {

Bus input_bus(Netlist& nl, std::string_view name, std::size_t width) {
    Bus bus(width);
    for (std::size_t i = 0; i < width; ++i) {
        std::string bit_name(name);
        bit_name += '[';
        bit_name += std::to_string(i);
        bit_name += ']';
        bus[i] = nl.input(bit_name);
    }
    return bus;
}

Bus xor_bus(Netlist& nl, const Bus& a, const Bus& b) {
    Bus out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = nl.xor2(a[i], b[i]);
    return out;
}

NetId xor_reduce(Netlist& nl, std::span<const NetId> nets) {
    if (nets.empty()) return nl.const0();
    std::vector<NetId> level(nets.begin(), nets.end());
    while (level.size() > 1) {
        std::vector<NetId> next;
        next.reserve((level.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(nl.xor2(level[i], level[i + 1]));
        if (level.size() % 2 != 0) next.push_back(level.back());
        level = std::move(next);
    }
    return level.front();
}

Bus register_bank(Netlist& nl, const Bus& data, CtrlGroup enable,
                  CtrlGroup reset, std::string_view name) {
    Bus out(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
        std::string bit_name;
        if (!name.empty()) {
            bit_name = std::string(name) + '[' + std::to_string(i) + ']';
        }
        out[i] = nl.dff(data[i], enable, reset, bit_name);
    }
    return out;
}

Bus register_bank_floating(Netlist& nl, std::size_t width, CtrlGroup enable,
                           CtrlGroup reset, std::string_view name) {
    Bus out(width);
    for (std::size_t i = 0; i < width; ++i) {
        std::string bit_name;
        if (!name.empty()) {
            bit_name = std::string(name) + '[' + std::to_string(i) + ']';
        }
        out[i] = nl.dff_floating(enable, reset, bit_name);
    }
    return out;
}

DelayChain delay_units(Netlist& nl, NetId net, unsigned units,
                       unsigned luts_per_unit, std::string_view name) {
    DelayChain chain;
    chain.out = net;
    const unsigned total = units * luts_per_unit;
    chain.stages.reserve(total);
    for (unsigned i = 0; i < total; ++i) {
        std::string stage_name;
        if (!name.empty()) {
            stage_name = std::string(name) + ".d" + std::to_string(i);
        }
        chain.out = nl.delay_buf(chain.out, stage_name);
        chain.stages.push_back(chain.out);
    }
    return chain;
}

void couple_chains(Netlist& nl, const DelayChain& a, const DelayChain& b) {
    const std::size_t overlap = std::min(a.stages.size(), b.stages.size());
    for (std::size_t i = 0; i < overlap; ++i) nl.couple(a.stages[i], b.stages[i]);
}

}  // namespace glitchmask::netlist
