#include "support/retry.hpp"

#include <cerrno>

#include "support/telemetry.hpp"

namespace glitchmask {

bool errno_transient(int error_number) noexcept {
    switch (error_number) {
        case EINTR:
        case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
        case EWOULDBLOCK:
#endif
        case EIO:
        case EBUSY:
            return true;
        default:
            return false;
    }
}

bool backoff_sleep(unsigned ms, const CancelToken* cancel) noexcept {
    using clock = std::chrono::steady_clock;
    const bool telem = telemetry::enabled();
    const auto start = clock::now();
    const auto deadline = start + std::chrono::milliseconds(ms);
    bool completed = true;
    for (;;) {
        if (cancel != nullptr && cancel->requested()) {
            completed = false;
            break;
        }
        const auto now = clock::now();
        if (now >= deadline) break;
        const auto slice = std::min<std::chrono::steady_clock::duration>(
            deadline - now, std::chrono::milliseconds(2));
        std::this_thread::sleep_for(slice);
    }
    if (telem) {
        const auto nanos =
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                 start)
                .count();
        telemetry::observe(telemetry::Histogram::kRetryBackoffNanos,
                           static_cast<std::uint64_t>(nanos));
    }
    return completed;
}

}  // namespace glitchmask
