// Campaign telemetry: a zero-cost-when-off counter registry with
// per-thread shards, plus the progress/ETA meter built on it.
//
// Design centre (mirrors the determinism story of the campaign engine):
//
//   * The hot paths (event simulators) never touch the registry at all --
//     they keep plain member counters (the price of `++processed_`) and
//     the campaign runner folds the *per-block deltas* into the calling
//     worker's shard at block boundaries.  Enabling telemetry therefore
//     neither serializes workers nor perturbs a single result bit.
//   * A shard is thread-local and written lock-free (relaxed atomics, one
//     writer); snapshot() folds all live shards plus the totals retired
//     by exited threads.  Every counter merges by an associative,
//     commutative operation (u64 sum or max), so the merged totals are
//     independent of thread scheduling: for a fixed campaign the
//     deterministic counters (events, toggles, glitches, ...) are exact
//     at any worker count, which the test suite asserts.  Committed
//     toggles are also exact across the scalar/bitsliced engines; the
//     schedule-shape counters (events, queue peak, glitch/cancel split)
//     are engine-specific.
//   * Wall-clock counters (block/checkpoint/idle nanos) are measurements,
//     not results -- counter_deterministic() separates the two classes so
//     tests and the determinism bench compare only the former.
//
// The registry is process-global and accumulates across campaigns; a
// driver brackets its run with two snapshot() calls and reports the delta
// (Snapshot::delta_since).  GLITCHMASK_TELEMETRY=1 enables collection
// globally; drivers also enable it for the duration of a run that asked
// for a report (ScopedTelemetryEnable).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "support/trace.hpp"

namespace glitchmask::telemetry {

// ----- counter registry --------------------------------------------------

enum class Counter : unsigned {
    kSimEvents = 0,        // events popped from a simulator queue
    kSimToggles,           // committed net transitions (per lane)
    kSimGlitches,          // transient toggles: 2nd+ toggle of a net within
                           // one activity window (clock cycle)
    kSimInertialCancels,   // pulse pairs annihilated by inertial filtering
    kSimQueuePeak,         // event-queue high-water mark (merged by max)
    kPoolTasksExecuted,    // tasks a pool worker ran
    kPoolTasksStolen,      // tasks taken from another worker's deque
    kPoolIdleNanos,        // time workers spent parked waiting for work
    kCampaignBlocks,       // shard blocks completed
    kCampaignTraces,       // traces folded into block accumulators
    kCampaignBlockNanos,   // wall time inside run_block
    kCheckpointWrites,     // snapshots written
    kCheckpointNanos,      // wall time inside atomic checkpoint writes
    kPhaseSimNanos,        // block phase: stimulus build + simulation
    kPhaseNoiseNanos,      // block phase: Gaussian noise row fills
    kPhaseMomentsNanos,    // block phase: moment-bank trace folds
    kPhaseAttributionNanos,  // block phase: per-net attribution folds
    kIoRetries,            // transient I/O failures absorbed by retry_io
    kServiceJobs,          // campaign-service jobs executed (not cached)
    kServiceCacheHits,     // submissions served from the result cache
    kCount
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

enum class MergeKind { kSum, kMax };

/// Stable dotted name used in run reports and bench JSON.
[[nodiscard]] const char* counter_name(Counter counter) noexcept;

[[nodiscard]] MergeKind counter_merge(Counter counter) noexcept;

/// True for counters that are a pure function of the campaign (schedule-
/// independent); false for wall-clock measurements.
[[nodiscard]] bool counter_deterministic(Counter counter) noexcept;

// ----- latency histograms ------------------------------------------------

/// Fixed-bucket distributions, sharded and gated exactly like the
/// counters.  Bucket counts are exact u64s merged by element-wise sum --
/// associative and commutative, so the merged vector is independent of
/// which worker observed what in which order.
enum class Histogram : unsigned {
    kQueueWaitNanos = 0,     // service: submit -> executor pickup
    kExecuteNanos,           // service: campaign run wall time per job
    kCheckpointWriteNanos,   // one atomic snapshot write (incl. retries)
    kCacheLookupNanos,       // service: submit-time result-cache scan
    kRetryBackoffNanos,      // retry_io backoff sleeps
    kWatchdogFireNanos,      // observed silence when the watchdog fired
    kBlockNanos,             // campaign block wall time
    kBlockTraces,            // traces per completed block (deterministic)
    kJobTraces,              // completed traces per completed service job
    kCount
};

inline constexpr std::size_t kHistogramCount =
    static_cast<std::size_t>(Histogram::kCount);

/// Power-of-two buckets covering the full u64 range: bucket 0 holds the
/// value 0, bucket i >= 1 spans [2^(i-1), 2^i).
inline constexpr std::size_t kHistogramBuckets = 65;

[[nodiscard]] constexpr std::size_t histogram_bucket(
    std::uint64_t value) noexcept {
    return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
}

/// Lower edge of a bucket (sparse render paths key buckets by it).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_floor(
    std::size_t bucket) noexcept {
    return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

/// Stable dotted name used in the metrics verb, run reports and bench
/// JSON.
[[nodiscard]] const char* histogram_name(Histogram histogram) noexcept;

/// True when the observed values are a pure function of the campaign
/// (trace counts), so the merged bucket counts are bit-identical at any
/// worker/executor count; false for wall-clock latencies.
[[nodiscard]] bool histogram_deterministic(Histogram histogram) noexcept;

/// Merged state of one histogram: exact bucket counts plus count/sum/max
/// rollups (max merges by max, the rest by sum).
struct HistogramSnapshot {
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;

    friend bool operator==(const HistogramSnapshot&,
                           const HistogramSnapshot&) = default;
};

// ----- gauges ------------------------------------------------------------

/// Instantaneous values: one relaxed global atomic each, set at service
/// state transitions (under the service lock, so not sharded) and read
/// into snapshots.  Cheap enough to stay ungated: a gauge without a
/// writer simply reads 0.
enum class Gauge : unsigned {
    kServiceQueueDepth = 0,
    kServiceRunningJobs,
    kServiceCacheEntries,
    kServiceSpoolBytes,
    kCount
};

inline constexpr std::size_t kGaugeCount =
    static_cast<std::size_t>(Gauge::kCount);

[[nodiscard]] const char* gauge_name(Gauge gauge) noexcept;
void set_gauge(Gauge gauge, std::uint64_t value) noexcept;
[[nodiscard]] std::uint64_t gauge_value(Gauge gauge) noexcept;

/// Global collection switch: GLITCHMASK_TELEMETRY (0/1, default off) on
/// first call, overridable via set_enabled.  When off, instrumented call
/// sites skip shard access entirely.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Enables collection for a scope (a driver run that writes a report) and
/// restores the previous state on destruction.
class ScopedTelemetryEnable {
public:
    explicit ScopedTelemetryEnable(bool on = true)
        : previous_(enabled()) {
        if (on) set_enabled(true);
    }
    ~ScopedTelemetryEnable() { set_enabled(previous_); }
    ScopedTelemetryEnable(const ScopedTelemetryEnable&) = delete;
    ScopedTelemetryEnable& operator=(const ScopedTelemetryEnable&) = delete;

private:
    bool previous_;
};

/// Merged registry state.  Values are u64; `value()` indexes by counter.
struct Snapshot {
    std::array<std::uint64_t, kCounterCount> values{};
    std::array<HistogramSnapshot, kHistogramCount> histograms{};
    std::array<std::uint64_t, kGaugeCount> gauges{};

    [[nodiscard]] std::uint64_t value(Counter counter) const noexcept {
        return values[static_cast<std::size_t>(counter)];
    }
    [[nodiscard]] const HistogramSnapshot& histogram(
        Histogram histogram) const noexcept {
        return histograms[static_cast<std::size_t>(histogram)];
    }
    [[nodiscard]] std::uint64_t gauge(Gauge gauge) const noexcept {
        return gauges[static_cast<std::size_t>(gauge)];
    }

    /// Per-run view: sum counters (and histogram buckets/count/sum) diff
    /// against `start`; max counters, histogram maxima and gauges keep
    /// the end value (a high-water mark has no meaningful difference).
    [[nodiscard]] Snapshot delta_since(const Snapshot& start) const noexcept;
};

/// One thread's counter shard.  Written only by its owner (lock-free,
/// relaxed); read concurrently by snapshot().
class Shard {
public:
    void add(Counter counter, std::uint64_t n = 1) noexcept {
        values_[static_cast<std::size_t>(counter)].fetch_add(
            n, std::memory_order_relaxed);
    }
    /// Merge-by-max update for high-water counters.
    void peak(Counter counter, std::uint64_t v) noexcept {
        std::atomic<std::uint64_t>& slot =
            values_[static_cast<std::size_t>(counter)];
        std::uint64_t current = slot.load(std::memory_order_relaxed);
        while (v > current &&
               !slot.compare_exchange_weak(current, v,
                                           std::memory_order_relaxed)) {
        }
    }

    /// One histogram observation: bucket count, count/sum, max.
    void observe(Histogram histogram, std::uint64_t value) noexcept {
        HistogramCell& cell =
            histograms_[static_cast<std::size_t>(histogram)];
        cell.buckets[histogram_bucket(value)].fetch_add(
            1, std::memory_order_relaxed);
        cell.count.fetch_add(1, std::memory_order_relaxed);
        cell.sum.fetch_add(value, std::memory_order_relaxed);
        std::uint64_t current = cell.max.load(std::memory_order_relaxed);
        while (value > current &&
               !cell.max.compare_exchange_weak(current, value,
                                               std::memory_order_relaxed)) {
        }
    }

    /// Concurrent read for snapshotting (relaxed; counters are
    /// independent, cross-counter consistency is not promised).
    [[nodiscard]] std::uint64_t load(std::size_t index) const noexcept {
        return values_[index].load(std::memory_order_relaxed);
    }
    [[nodiscard]] HistogramSnapshot load_histogram(
        std::size_t index) const noexcept {
        const HistogramCell& cell = histograms_[index];
        HistogramSnapshot out;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b)
            out.buckets[b] = cell.buckets[b].load(std::memory_order_relaxed);
        out.count = cell.count.load(std::memory_order_relaxed);
        out.sum = cell.sum.load(std::memory_order_relaxed);
        out.max = cell.max.load(std::memory_order_relaxed);
        return out;
    }
    void clear() noexcept {
        for (auto& slot : values_) slot.store(0, std::memory_order_relaxed);
        for (auto& cell : histograms_) {
            for (auto& bucket : cell.buckets)
                bucket.store(0, std::memory_order_relaxed);
            cell.count.store(0, std::memory_order_relaxed);
            cell.sum.store(0, std::memory_order_relaxed);
            cell.max.store(0, std::memory_order_relaxed);
        }
    }

private:
    struct HistogramCell {
        std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> max{0};
    };

    std::array<std::atomic<std::uint64_t>, kCounterCount> values_{};
    std::array<HistogramCell, kHistogramCount> histograms_{};
};

/// The calling thread's shard; registers it on first use.  The shard
/// outlives the thread logically: its totals fold into a retired
/// accumulator when the thread exits.
[[nodiscard]] Shard& shard();

/// Gated convenience for call sites without a cached shard reference.
inline void observe(Histogram histogram, std::uint64_t value) {
    if (enabled()) shard().observe(histogram, value);
}

/// Folds every live shard and the retired totals into one snapshot.
[[nodiscard]] Snapshot snapshot();

/// Zeroes all shards, retired totals and gauges (test isolation).
void reset();

/// Prometheus text exposition of a snapshot: counters, histograms
/// (cumulative `le` buckets in the native unit -- nanoseconds for the
/// latency families) and gauges, names prefixed `glitchmask_` with dots
/// mangled to underscores.
[[nodiscard]] std::string render_prometheus_text(const Snapshot& snapshot);

/// Process CPU time (user + system, all threads) in seconds.
[[nodiscard]] double process_cpu_seconds() noexcept;

// ----- simulator statistics ----------------------------------------------

/// Cumulative activity counters both event engines expose via stats().
/// Plain members in the engines; deltas are folded into the registry at
/// block boundaries by record_sim_block().
struct SimStats {
    std::uint64_t events = 0;
    std::uint64_t toggles = 0;
    std::uint64_t glitches = 0;
    std::uint64_t inertial_cancels = 0;
    std::uint64_t queue_peak = 0;  // high-water; merged by max
};

/// Adds (now - last) to the calling thread's shard and advances `last`.
/// Call once per completed block with the replica's cumulative stats.
void record_sim_block(const SimStats& now, SimStats& last);

// ----- phase profiling ---------------------------------------------------

/// Monotonic clock in nanoseconds (the registry's time base).
[[nodiscard]] std::uint64_t steady_now_ns() noexcept;

/// Accumulates wall time into phase counters within one block body.
/// mark() pins the clock; each lap(counter) credits the time since the
/// previous mark/lap locally and re-pins, so consecutive laps chain
/// through interleaved phases without re-reading the clock twice.
/// flush() folds the local totals into the calling thread's shard once
/// per block; when span tracing is on and an ambient span is open (the
/// runner's block span), it additionally emits one leaf span per phase
/// laid out sequentially from the first mark, so sim/noise/moments/
/// attribution appear under each block in the exported trace.  All
/// methods are no-ops when both telemetry and tracing are disabled, so
/// the block bodies carry no clock reads in the default configuration.
class PhaseClock {
public:
    PhaseClock() : enabled_(enabled()), tracing_(trace::enabled()) {}

    void mark() noexcept {
        if (!enabled_ && !tracing_) return;
        last_ = steady_now_ns();
        if (first_ == 0) first_ = last_;
    }
    void lap(Counter counter) noexcept {
        if (!enabled_ && !tracing_) return;
        const std::uint64_t now = steady_now_ns();
        nanos_[static_cast<std::size_t>(counter)] += now - last_;
        last_ = now;
    }
    void flush();

private:
    bool enabled_;
    bool tracing_;
    std::uint64_t last_ = 0;
    std::uint64_t first_ = 0;
    std::array<std::uint64_t, kCounterCount> nanos_{};
};

// ----- progress / ETA ----------------------------------------------------

struct ProgressUpdate {
    std::string campaign;            // driver id ("des_tvla", "seq_0123")
    std::size_t completed_traces = 0;
    std::size_t total_traces = 0;
    double elapsed_sec = 0.0;
    double traces_per_sec = 0.0;     // rate since start (resume-corrected)
    double eta_sec = 0.0;            // 0 when the rate is still unknown
    bool final = false;              // last update of the run
};

using ProgressFn = std::function<void(const ProgressUpdate&)>;

/// Heartbeat interval override for --progress flags: > 0 activates the
/// stderr heartbeat regardless of GLITCHMASK_PROGRESS; 0 defers to the
/// env var (its numeric value, seconds; unset/0 = off).
void set_heartbeat_interval(double seconds) noexcept;
[[nodiscard]] double heartbeat_interval() noexcept;

/// Thread-safe, rate-limited progress reporter.  Workers call advance()
/// after each completed block; at most one update per interval reaches
/// the callback and/or the stderr heartbeat line.  Inactive (and
/// near-free) when neither a callback nor a heartbeat is configured.
class ProgressMeter {
public:
    ProgressMeter(std::string campaign, std::size_t total_traces,
                  ProgressFn callback);

    /// Neither callback nor heartbeat configured -- callers may skip the
    /// meter entirely.
    [[nodiscard]] bool active() const noexcept;

    /// Credits traces completed by a *previous* process (checkpoint
    /// resume): counts toward completion but not toward the rate.
    void note_resumed(std::size_t traces);

    /// Credits `traces` freshly completed; emits when the rate limit
    /// allows.  Safe from any thread.
    void advance(std::size_t traces);

    /// Emits one final (non-rate-limited) update.
    void finish();

    [[nodiscard]] std::size_t completed() const noexcept {
        return completed_.load(std::memory_order_relaxed);
    }

private:
    void emit(bool final);

    std::string campaign_;
    std::size_t total_ = 0;
    ProgressFn callback_;
    double interval_sec_ = 0.0;      // resolved once at construction
    bool heartbeat_ = false;
    std::atomic<std::size_t> completed_{0};
    std::atomic<std::size_t> resumed_{0};
    std::atomic<std::int64_t> next_emit_ns_{0};  // steady-clock deadline
    std::int64_t start_ns_ = 0;
};

}  // namespace glitchmask::telemetry
