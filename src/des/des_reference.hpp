// Bit-exact reference implementation of DES (FIPS 46-3) and two-key /
// three-key Triple-DES.
//
// This is the functional golden model: the masked hardware cores in
// des/masked_des.hpp must produce exactly these ciphertexts, and the
// S-box ANF decomposition in des/sbox_anf.hpp is derived from and
// verified against these tables.
//
// Conventions: 64-bit blocks and keys are passed as std::uint64_t with
// DES bit 1 = most significant bit (the numbering used by the standard's
// permutation tables).  Subkeys are 48 bits right-aligned; halves L/R and
// C/D are right-aligned in 32/28-bit words.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace glitchmask::des {

inline constexpr unsigned kRounds = 16;

/// Generic DES-style permutation/expansion: output bit i (1-based from
/// the MSB of a `table.size()`-bit word) takes input bit table[i-1]
/// (1-based from the MSB of an `in_width`-bit word).
[[nodiscard]] std::uint64_t permute(std::uint64_t in,
                                    std::span<const std::uint8_t> table,
                                    unsigned in_width);

/// Table accessors (exposed for the netlist builders, which implement
/// permutations as wiring).
[[nodiscard]] std::span<const std::uint8_t> table_ip();
[[nodiscard]] std::span<const std::uint8_t> table_fp();
[[nodiscard]] std::span<const std::uint8_t> table_e();
[[nodiscard]] std::span<const std::uint8_t> table_p();
[[nodiscard]] std::span<const std::uint8_t> table_pc1();
[[nodiscard]] std::span<const std::uint8_t> table_pc2();
/// Left-shift amount of each round (1 or 2).
[[nodiscard]] std::span<const std::uint8_t> key_shifts();

/// S-box lookup: `box` in 0..7, `in` the 6 input bits (b5..b0 with b5 the
/// MSB as cut from the expanded word); returns 4 bits.
[[nodiscard]] std::uint8_t sbox(unsigned box, std::uint8_t in);

/// Raw S-box table row: `row` in 0..3 selected by (b5, b0) -- this is the
/// paper's "mini S-box", a 4-bit permutation over the middle bits.
[[nodiscard]] std::uint8_t mini_sbox(unsigned box, unsigned row,
                                     std::uint8_t middle4);

/// The 16 round subkeys (48 bits each).
[[nodiscard]] std::array<std::uint64_t, kRounds> key_schedule(std::uint64_t key);

/// Feistel round function f(R, K).
[[nodiscard]] std::uint32_t feistel(std::uint32_t r, std::uint64_t subkey);

[[nodiscard]] std::uint64_t encrypt_block(std::uint64_t plaintext,
                                          std::uint64_t key);
[[nodiscard]] std::uint64_t decrypt_block(std::uint64_t ciphertext,
                                          std::uint64_t key);

/// Per-round intermediate state, for cross-checking the hardware cores.
struct RoundTrace {
    std::array<std::uint32_t, kRounds + 1> left{};   // L0..L16
    std::array<std::uint32_t, kRounds + 1> right{};  // R0..R16
    std::array<std::uint64_t, kRounds> subkey{};
    std::uint64_t ciphertext = 0;
};
[[nodiscard]] RoundTrace encrypt_trace(std::uint64_t plaintext,
                                       std::uint64_t key);

/// EDE Triple-DES (keying option 1 with three keys; pass k1 == k3 for
/// two-key TDES, k1 == k2 == k3 degenerates to single DES).
[[nodiscard]] std::uint64_t tdes_encrypt(std::uint64_t plaintext,
                                         std::uint64_t k1, std::uint64_t k2,
                                         std::uint64_t k3);
[[nodiscard]] std::uint64_t tdes_decrypt(std::uint64_t ciphertext,
                                         std::uint64_t k1, std::uint64_t k2,
                                         std::uint64_t k3);

}  // namespace glitchmask::des
