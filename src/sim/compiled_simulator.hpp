// Compiled-netlist replay backend: straight-line wide-lane simulation.
//
// The event engines (sim/simulator.hpp, sim/batch_simulator.hpp) pay for
// generality on every event: a priority-queue sift per push/pop, pointer
// chasing through Netlist::fanout(), and per-event DelayModel lookups.
// All of that is *static* per (netlist, delay model): delays are fixed at
// construction, so the set of possible event times -- and therefore the
// whole scheduling structure -- is data-independent.  This backend
// compiles that structure once into a flat CompiledProgram:
//
//   * levelized settle order (creation order is topological for
//     combinational cells, same order the batch engine uses);
//   * per-cell gate delay / inertial window and a CSR fanout table with
//     the wire delay baked into each edge;
//   * the time-slot ring: because every push is bounded by
//     max(wire) + gate + bump slack picoseconds past the current time,
//     events live in a power-of-two ring of FIFO time buckets instead of
//     a priority queue.  Each push/pop is O(1); FIFO order within a
//     bucket *is* (time, seq) order, so replay is exactly the event
//     engine's schedule without the heap.  A tiny overflow heap catches
//     pushes beyond the ring horizon (never hit by the clocked drivers;
//     correctness never depends on the ring size).
//
// Lanes widen past 64 with LW<W> lane-word arrays (W = 1/2/4/8, up to
// 512 traces per pass), amortizing the shared schedule bookkeeping over
// 8x more traces.  Only the *data* widens: masks, pendings and SchedMark
// groups carry LW<W> words, and the per-lane commit discipline (monotonic
// bump marks, inertial cancellation, per-lane toggled masks) is ported
// verbatim from BatchEventSimulator, so each lane's committed waveform is
// bit-identical to a scalar EventSimulator run of that lane's stimulus
// (tests/compiled_sim_test.cpp asserts `==` on the full gadget zoo and
// DES).  Sinks attach per 64-lane chunk (BatchToggleSink + BatchWordView
// per chunk), so BatchPowerRecorder / BatchAttributionProbe work
// unchanged.
//
// Programs are cached in a small process-wide LRU keyed by a structural
// fingerprint of (cells, delays, SimOptions); campaign workers and blocks
// share one immutable program (shared_ptr) instead of recompiling.
//
// Not supported (same rule as the batch engine): timing coupling makes
// DelayBuf delays data-dependent, which breaks the shared-schedule
// premise -- the constructor rejects it and eval/ falls back to the
// scalar path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/batch_simulator.hpp"
#include "sim/clocked.hpp"
#include "sim/delay_model.hpp"
#include "sim/simulator.hpp"
#include "support/telemetry.hpp"

namespace glitchmask::sim {

/// Widest supported lane word: 8 x 64 = 512 traces per pass.
inline constexpr unsigned kMaxLaneChunks = 8;

/// Immutable replay program for one (netlist, delay model, SimOptions)
/// triple.  Everything the inner loop touches lives in flat arrays; the
/// program holds no reference to the Netlist or DelayModel it was
/// compiled from and is shared across engines via shared_ptr.
struct CompiledProgram {
    struct FanoutEdge {
        CellId cell;
        std::uint8_t pin;
        std::uint32_t wire_ps;  // DelayModel::wire_delay baked in
    };
    struct FlopInfo {
        CellId cell;
        netlist::CtrlGroup enable;
        netlist::CtrlGroup reset;
    };

    std::uint64_t key = 0;  // structural fingerprint (cache key)
    std::size_t n_cells = 0;

    std::vector<netlist::CellKind> kind;
    std::vector<std::uint8_t> pins;        // pin_count(kind)
    std::vector<NetId> in;                 // 3 per cell (kNoNet padded)
    std::vector<std::uint32_t> pin_base;   // CSR into the packed pin state
                                           // (n_cells + 1; most cells have
                                           // 1-2 pins, so packing nearly
                                           // halves the engine's pin array)
    std::vector<std::uint32_t> gate_ps;
    std::vector<TimePs> inertial_window;   // same rounding as the event engines
    std::vector<std::uint8_t> settle_one;  // all-sources-low steady state

    std::vector<std::uint32_t> fanout_begin;  // CSR, n_cells + 1 entries
    std::vector<FanoutEdge> fanout;
    std::vector<FlopInfo> flops;

    std::uint32_t clk_to_q = 0;
    unsigned max_ctrl_group = 0;
    bool inertial_filtering = true;

    /// Time-slot ring size (power of two): covers the longest possible
    /// push offset (wire + gate + clk-to-Q + bump slack), so in practice
    /// every event lands in the ring.
    std::size_t ring_size = 0;
};

/// Compiles (or fetches from the process-wide LRU cache) the replay
/// program for the triple.  Throws std::invalid_argument on an unfrozen
/// netlist.
[[nodiscard]] std::shared_ptr<const CompiledProgram> compile_netlist(
    const netlist::Netlist& nl, const DelayModel& dm, SimOptions options = {});

struct CompiledCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
};
[[nodiscard]] CompiledCacheStats compiled_program_cache_stats();
void clear_compiled_program_cache();

/// Type-erased wide-lane engine (W is a template parameter of the
/// implementation; virtual dispatch sits only at coarse call sites --
/// drives, clock edges, run_until -- never inside the event loop).
class CompiledEngineBase {
public:
    virtual ~CompiledEngineBase() = default;

    [[nodiscard]] virtual unsigned chunks() const noexcept = 0;

    /// Consistent steady state for "all sources low" in every lane; no
    /// toggles emitted, time reset to 0.
    virtual void initialize() = 0;

    /// Per-chunk toggle sink: chunk c observes lanes [64c, 64c+64).
    virtual void set_sink(unsigned chunk, BatchToggleSink* sink) noexcept = 0;

    /// Lane-word view of one chunk (energy-coupling tap for
    /// BatchPowerRecorder).  Stable for the engine's lifetime.
    [[nodiscard]] virtual const BatchWordView* chunk_view(
        unsigned chunk) const noexcept = 0;

    /// Drives a source net in one 64-lane chunk.  Throws
    /// std::invalid_argument for a drive in the past.
    virtual void drive_chunk(NetId source, unsigned chunk, std::uint64_t values,
                             std::uint64_t lanes, TimePs time) = 0;
    /// Broadcast drive: every lane of every chunk to `value`.
    virtual void drive_all(NetId source, bool value, TimePs time) = 0;

    /// Samples all flops with the wire-delayed pin view (reset group
    /// beats enable group, exactly like BatchClockedSim) and launches the
    /// changed Q lanes at `launch`.  `enable`/`reset` index ctrl groups.
    virtual void sample_flops(const std::uint8_t* enable,
                              const std::uint8_t* reset, TimePs launch) = 0;

    virtual void run_until(TimePs t_end) = 0;
    virtual TimePs run_to_quiescence() = 0;

    [[nodiscard]] virtual std::uint64_t word(NetId net,
                                             unsigned chunk) const noexcept = 0;
    [[nodiscard]] virtual std::uint64_t pin_word(CellId cell, unsigned pin,
                                                 unsigned chunk) const noexcept = 0;

    [[nodiscard]] virtual TimePs now() const noexcept = 0;
    virtual void begin_activity_window() noexcept = 0;

    /// Same per-lane accounting contract as BatchEventSimulator: toggle /
    /// glitch / cancel sums match the scalar engine; events and
    /// queue-peak measure the shared compiled schedule.
    [[nodiscard]] virtual telemetry::SimStats stats() const noexcept = 0;
};

/// `chunks` in {1, 2, 4, 8}.
[[nodiscard]] std::unique_ptr<CompiledEngineBase> make_compiled_engine(
    std::shared_ptr<const CompiledProgram> program, unsigned chunks);

/// Cycle-level testbench driver around the compiled engine -- the wide
/// counterpart of BatchClockedSim with the identical control API plus a
/// chunk axis on the data path.  Lanes = 64 * chunks.
class CompiledClockedSim {
public:
    /// `lanes` in {64, 128, 256, 512}.  Throws std::invalid_argument on
    /// other widths or when timing coupling is requested.
    CompiledClockedSim(const netlist::Netlist& nl, const DelayModel& dm,
                       unsigned lanes, ClockConfig clock = {},
                       CouplingConfig coupling = {}, SimOptions options = {});

    [[nodiscard]] unsigned chunks() const noexcept { return engine_->chunks(); }
    [[nodiscard]] unsigned lanes() const noexcept { return chunks() * 64u; }

    void set_enable(netlist::CtrlGroup group, bool enabled);
    void set_reset(netlist::CtrlGroup group, bool asserted);

    /// Per-chunk primary-input change for right after the next edge.
    void set_input_word(NetId input, unsigned chunk, std::uint64_t values);
    /// Broadcast form (same value in every lane of every chunk).
    void set_input(NetId input, bool value);

    void step(std::size_t cycles = 1);

    [[nodiscard]] std::uint64_t word(NetId net, unsigned chunk) const {
        return engine_->word(net, chunk);
    }
    [[nodiscard]] bool value(NetId net, unsigned lane) const {
        return ((engine_->word(net, lane / 64u) >> (lane % 64u)) & 1u) != 0;
    }
    [[nodiscard]] std::uint64_t pin_word(CellId cell, unsigned pin,
                                         unsigned chunk) const {
        return engine_->pin_word(cell, pin, chunk);
    }

    void set_sink(unsigned chunk, BatchToggleSink* sink) {
        engine_->set_sink(chunk, sink);
    }
    [[nodiscard]] const BatchWordView* chunk_view(unsigned chunk) const {
        return engine_->chunk_view(chunk);
    }

    [[nodiscard]] std::size_t cycle() const noexcept { return cycle_; }
    [[nodiscard]] TimePs period() const noexcept { return clock_.period_ps; }
    [[nodiscard]] CompiledEngineBase& engine() noexcept { return *engine_; }
    [[nodiscard]] const CompiledEngineBase& engine() const noexcept {
        return *engine_;
    }
    [[nodiscard]] telemetry::SimStats stats() const noexcept {
        return engine_->stats();
    }
    /// The shared replay program (cache-reuse checks in tests).
    [[nodiscard]] const std::shared_ptr<const CompiledProgram>& program()
        const noexcept {
        return program_;
    }

    void restart();

private:
    const netlist::Netlist& nl_;
    ClockConfig clock_;
    std::shared_ptr<const CompiledProgram> program_;
    std::unique_ptr<CompiledEngineBase> engine_;
    std::vector<std::uint8_t> enable_;
    std::vector<std::uint8_t> reset_;
    struct PendingInput {
        NetId net;
        std::uint8_t chunk;  // 0xFF = broadcast
        std::uint64_t values;
    };
    std::vector<PendingInput> pending_;
    std::size_t cycle_ = 0;
};

}  // namespace glitchmask::sim
