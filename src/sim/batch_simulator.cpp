#include "sim/batch_simulator.hpp"

#include <bit>
#include <stdexcept>

namespace glitchmask::sim {

namespace {
constexpr std::uint8_t kOutputPin = 0xFF;
constexpr std::uint8_t kSourcePin = 0xFE;
}  // namespace

BatchEventSimulator::BatchEventSimulator(const Netlist& nl, const DelayModel& dm,
                                         CouplingConfig coupling,
                                         SimOptions options)
    : nl_(nl), dm_(dm), options_(options) {
    if (!nl.frozen())
        throw std::runtime_error("BatchEventSimulator: netlist not frozen");
    if (coupling.timing_enabled)
        throw std::invalid_argument(
            "BatchEventSimulator: timing coupling makes delays data-dependent; "
            "lanes cannot share an event schedule -- use the scalar "
            "EventSimulator");
    out_val_.resize(nl.size(), 0);
    pin_val_.resize(nl.size() * 3, 0);
    last_sched_out_.resize(nl.size(), 0);
    pending_.resize(nl.size());
    marks_.resize(nl.size());
    // Same rounding expression as the scalar schedule_output so the
    // windows agree bit-for-bit.
    inertial_window_.resize(nl.size(), 0);
    for (CellId id = 0; id < nl.size(); ++id)
        inertial_window_[id] = static_cast<TimePs>(
            options_.inertial_factor * static_cast<double>(dm_.gate_delay(id)));
    initialize();
}

std::uint64_t BatchEventSimulator::eval_word(CellId id) const noexcept {
    const netlist::Cell& cell = nl_.cell(id);
    return netlist::eval_cell_word(cell.kind, pin_val_[id * 3 + 0],
                                   pin_val_[id * 3 + 1], pin_val_[id * 3 + 2]);
}

void BatchEventSimulator::initialize() {
    queue_ = {};
    now_ = 0;
    seq_ = 0;
    window_epoch_ = 1;
    window_stamp_.assign(nl_.size(), 0);
    window_toggled_.assign(nl_.size(), 0);
    std::fill(out_val_.begin(), out_val_.end(), 0);
    std::fill(pin_val_.begin(), pin_val_.end(), 0);
    for (auto& pending : pending_) pending.clear();
    for (auto& marks : marks_) marks.clear();

    // Constants first (they are sources), then a levelized pass: creation
    // order is topological for combinational cells.
    for (CellId id = 0; id < nl_.size(); ++id) {
        const netlist::Cell& cell = nl_.cell(id);
        std::uint64_t value = 0;
        switch (cell.kind) {
            case CellKind::Input:
            case CellKind::Dff:
            case CellKind::Const0:
                value = 0;
                break;
            case CellKind::Const1:
                value = kAllLanes;
                break;
            default: {
                const unsigned pins = netlist::pin_count(cell.kind);
                std::uint64_t a = 0;
                std::uint64_t b = 0;
                std::uint64_t c = 0;
                if (pins > 0) a = out_val_[cell.in[0]];
                if (pins > 1) b = out_val_[cell.in[1]];
                if (pins > 2) c = out_val_[cell.in[2]];
                value = netlist::eval_cell_word(cell.kind, a, b, c);
                break;
            }
        }
        out_val_[id] = value;
        last_sched_out_[id] = value;
    }
    // Make the pin view consistent with the settled output values.
    for (CellId id = 0; id < nl_.size(); ++id) {
        const netlist::Cell& cell = nl_.cell(id);
        const unsigned pins = netlist::pin_count(cell.kind);
        for (unsigned p = 0; p < pins; ++p)
            pin_val_[id * 3 + p] = out_val_[cell.in[p]];
    }
}

void BatchEventSimulator::drive(NetId source, std::uint64_t values,
                                std::uint64_t lanes, TimePs time) {
    if (lanes == 0) return;
    queue_.push(Event{time, seq_++, source, kSourcePin, values, lanes});
}

void BatchEventSimulator::schedule_group(CellId cell, std::uint64_t value,
                                         std::uint64_t lanes, TimePs when) {
    // Inertial pulse filtering, per lane: a lane's previous (still
    // pending) opposite-value commit closer than the inertial window forms
    // a sub-propagation-delay pulse; both edges annihilate.  A lane's
    // "previous pending commit" is the newest pending entry whose mask
    // contains it, so scan from the back and peel lanes off as their
    // newest entry is found.
    std::uint64_t cancelled = 0;
    if (options_.inertial_filtering) {
        std::uint64_t to_check = lanes;
        auto& pending = pending_[cell];
        for (auto it = pending.rbegin(); it != pending.rend() && to_check != 0;
             ++it) {
            const std::uint64_t m = to_check & it->lanes;
            if (m == 0) continue;
            if (when >= it->time && when - it->time < inertial_window_[cell]) {
                it->lanes &= ~m;
                cancelled |= m;
            }
            to_check &= ~m;
        }
        inertial_cancels_ +=
            static_cast<std::uint64_t>(std::popcount(cancelled));
    }

    // The scalar simulator records the scheduled value/time even when the
    // pulse cancels -- mirror that for every lane of the group.
    last_sched_out_[cell] = (last_sched_out_[cell] & ~lanes) | (value & lanes);
    auto& marks = marks_[cell];
    for (SchedMark& mark : marks) mark.lanes &= ~lanes;
    bool merged = false;
    for (SchedMark& mark : marks) {
        if (mark.when == when) {
            mark.lanes |= lanes;
            merged = true;
            break;
        }
    }
    if (!merged) marks.push_back(SchedMark{when, lanes});

    const std::uint64_t survivors = lanes & ~cancelled;
    if (survivors == 0) return;
    pending_[cell].push_back(Pending{when, seq_, survivors});
    queue_.push(Event{when, seq_++, cell, kOutputPin, value, survivors});
}

void BatchEventSimulator::schedule_output(CellId cell, std::uint64_t value,
                                          std::uint64_t changed, TimePs at) {
    // Per-lane monotonic commits: lane l's commit time is bumped past its
    // last scheduled time, exactly like the scalar guard.  `at` is
    // non-decreasing per cell (event times are non-decreasing and the gate
    // delay is static), so marks older than `at` can never bump again.
    auto& marks = marks_[cell];
    std::erase_if(marks, [at](const SchedMark& mark) {
        return mark.when < at || mark.lanes == 0;
    });

    std::uint64_t covered = 0;
    for (const SchedMark& mark : marks) covered |= mark.lanes;
    covered &= changed;

    // Lanes without a recent mark commit at `at` unbumped.  (The scalar
    // guard `when <= last_sched_time` with last_sched_time still 0 only
    // fires at at == 0, which needs a zero-delay gate hit at time 0.)
    const std::uint64_t unmarked = changed & ~covered;

    if (covered == 0) {
        schedule_group(cell, value, unmarked, at == 0 ? 1 : at);
        return;
    }

    // Same-timestamp burst: group the covered lanes by their newest mark
    // and bump each group one past it.  Groups are computed before any is
    // applied -- schedule_group edits the mark list.
    struct Group {
        TimePs when;
        std::uint64_t lanes;
    };
    Group groups[8];
    std::size_t n_groups = 0;
    std::vector<Group> spill;  // marks rarely exceed a handful of entries
    std::uint64_t left = covered;
    while (left != 0) {
        TimePs newest = 0;
        for (const SchedMark& mark : marks)
            if ((mark.lanes & left) != 0 && mark.when >= newest)
                newest = mark.when;
        std::uint64_t lanes_at_newest = 0;
        for (const SchedMark& mark : marks)
            if (mark.when == newest) lanes_at_newest |= mark.lanes & left;
        if (n_groups < 8)
            groups[n_groups++] = Group{newest + 1, lanes_at_newest};
        else
            spill.push_back(Group{newest + 1, lanes_at_newest});
        left &= ~lanes_at_newest;
    }
    for (std::size_t i = 0; i < n_groups; ++i)
        schedule_group(cell, value, groups[i].lanes, groups[i].when);
    for (const Group& group : spill)
        schedule_group(cell, value, group.lanes, group.when);
    if (unmarked != 0) schedule_group(cell, value, unmarked, at == 0 ? 1 : at);
}

void BatchEventSimulator::commit_output(const Event& ev) {
    std::uint64_t lanes = ev.lanes;
    if (ev.pin == kOutputPin) {
        // The pending entry carries the post-cancellation lane set; a
        // fully-cancelled entry commits nothing but must still be removed.
        auto& pending = pending_[ev.cell];
        lanes = 0;
        for (auto it = pending.begin(); it != pending.end(); ++it) {
            if (it->seq == ev.seq) {
                lanes = it->lanes;
                pending.erase(it);
                break;
            }
        }
    }
    const std::uint64_t toggled = lanes & (out_val_[ev.cell] ^ ev.value);
    if (toggled == 0) return;
    // Telemetry, per lane: a lane's 2nd+ toggle of this net within the
    // current activity window is a transient (glitch).  Toggle totals
    // match the scalar engine exactly (same committed transitions); the
    // glitch/cancel split reflects this engine's shared evaluation
    // schedule and is compared across runs of the same engine only.
    toggles_ += static_cast<std::uint64_t>(std::popcount(toggled));
    if (window_stamp_[ev.cell] == window_epoch_) {
        glitches_ += static_cast<std::uint64_t>(
            std::popcount(toggled & window_toggled_[ev.cell]));
        window_toggled_[ev.cell] |= toggled;
    } else {
        window_stamp_[ev.cell] = window_epoch_;
        window_toggled_[ev.cell] = toggled;
    }
    out_val_[ev.cell] = (out_val_[ev.cell] & ~toggled) | (ev.value & toggled);
    if (sink_ != nullptr)
        sink_->on_toggle(ev.cell, ev.time, out_val_[ev.cell], toggled);
    for (const netlist::Sink& sink : nl_.fanout(ev.cell)) {
        const TimePs at = ev.time + dm_.wire_delay(sink.cell, sink.pin);
        queue_.push(Event{at, seq_++, sink.cell, sink.pin, out_val_[ev.cell],
                          toggled});
    }
}

void BatchEventSimulator::update_pin(const Event& ev) {
    std::uint64_t& slot = pin_val_[ev.cell * 3 + ev.pin];
    slot = (slot & ~ev.lanes) | (ev.value & ev.lanes);
    const netlist::Cell& cell = nl_.cell(ev.cell);
    if (cell.kind == CellKind::Dff) return;  // D sampled at clock edges only

    // Lanes outside ev.lanes provably evaluate to their last scheduled
    // value (their pins did not change since their last evaluation), so
    // `changed` is automatically confined to this event's lanes.
    const std::uint64_t value = eval_word(ev.cell);
    const std::uint64_t changed = value ^ last_sched_out_[ev.cell];
    if (changed == 0) return;
    schedule_output(ev.cell, value, changed,
                    ev.time + dm_.gate_delay(ev.cell));
}

void BatchEventSimulator::run_until(TimePs t_end) {
    while (!queue_.empty() && queue_.top().time < t_end) {
        if (queue_.size() > queue_peak_) queue_peak_ = queue_.size();
        const Event ev = queue_.top();
        queue_.pop();
        now_ = ev.time;
        ++processed_;
        if (ev.pin == kOutputPin || ev.pin == kSourcePin)
            commit_output(ev);
        else
            update_pin(ev);
    }
    now_ = t_end;
}

TimePs BatchEventSimulator::run_to_quiescence() {
    while (!queue_.empty()) {
        if (queue_.size() > queue_peak_) queue_peak_ = queue_.size();
        const Event ev = queue_.top();
        queue_.pop();
        now_ = ev.time;
        ++processed_;
        if (ev.pin == kOutputPin || ev.pin == kSourcePin)
            commit_output(ev);
        else
            update_pin(ev);
    }
    return now_;
}

// ----- BatchClockedSim ---------------------------------------------------

BatchClockedSim::BatchClockedSim(const Netlist& nl, const DelayModel& dm,
                                 ClockConfig clock, CouplingConfig coupling,
                                 SimOptions options)
    : nl_(nl), dm_(dm), clock_(clock), engine_(nl, dm, coupling, options) {
    enable_.assign(nl.max_ctrl_group() + 1u, 0);
    reset_.assign(nl.max_ctrl_group() + 1u, 0);
    enable_[netlist::kAlwaysEnabled] = 1;
}

void BatchClockedSim::set_enable(netlist::CtrlGroup group, bool enabled) {
    if (group == netlist::kAlwaysEnabled)
        throw std::runtime_error("BatchClockedSim: group 0 is always enabled");
    enable_.at(group) = enabled ? 1 : 0;
}

void BatchClockedSim::set_reset(netlist::CtrlGroup group, bool asserted) {
    if (group == netlist::kAlwaysEnabled)
        throw std::runtime_error("BatchClockedSim: group 0 cannot be reset");
    reset_.at(group) = asserted ? 1 : 0;
}

void BatchClockedSim::set_input_word(NetId input, std::uint64_t values) {
    if (nl_.cell(input).kind != netlist::CellKind::Input)
        throw std::runtime_error(
            "BatchClockedSim::set_input_word: not a primary input");
    pending_.push_back({input, values});
}

void BatchClockedSim::step(std::size_t cycles) {
    for (std::size_t n = 0; n < cycles; ++n) {
        const TimePs edge = static_cast<TimePs>(cycle_) * clock_.period_ps;
        engine_.begin_activity_window();

        // 1. Sample the flops with the pin view at the edge.  The drive
        // mask carries exactly the lanes whose Q changes, so each lane
        // sees the same source events as its scalar run.
        struct Update {
            NetId net;
            std::uint64_t values;
            std::uint64_t lanes;
        };
        std::vector<Update> updates;
        for (const CellId flop : nl_.flops()) {
            const netlist::Cell& cell = nl_.cell(flop);
            std::uint64_t q = engine_.word(flop);
            if (cell.reset != netlist::kAlwaysEnabled && reset_[cell.reset] != 0) {
                q = 0;
            } else if (enable_[cell.enable] != 0) {
                q = engine_.pin_word(flop, 0);
            }
            const std::uint64_t changed = q ^ engine_.word(flop);
            if (changed != 0) updates.push_back({flop, q, changed});
        }

        // 2. Launch new Q values and pending input changes after clk-to-Q.
        const TimePs launch = edge + dm_.clk_to_q();
        for (const Update& update : updates)
            engine_.drive(update.net, update.values, update.lanes, launch);
        for (const PendingInput& input : pending_)
            engine_.drive(input.net, input.values, kAllLanes, launch);
        pending_.clear();

        // 3. Settle until just before the next edge.
        engine_.run_until(edge + clock_.period_ps);
        ++cycle_;
    }
}

void BatchClockedSim::restart() {
    engine_.initialize();
    enable_.assign(enable_.size(), 0);
    reset_.assign(reset_.size(), 0);
    enable_[netlist::kAlwaysEnabled] = 1;
    pending_.clear();
    cycle_ = 0;
}

}  // namespace glitchmask::sim
