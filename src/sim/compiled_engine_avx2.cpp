// AVX2 instantiation of the wide-lane engine: same source, compiled with
// -mavx2 -ffp-contract=off (src/CMakeLists.txt) so the LW<W> word loops
// and eval_cell_lw become 256-bit integer ops.  The engine carries no
// floating point, so the variant is bit-identical to engine_portable by
// construction; dispatch in make_compiled_engine is purely for speed.
#if defined(GLITCHMASK_HAVE_AVX2)
#define GLITCHMASK_ENGINE_VARIANT engine_avx2
#include "sim/compiled_engine_impl.h"
#endif
