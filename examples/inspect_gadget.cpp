// Inspect any zoo gadget like an EDA tool would: structural Verilog
// export, Graphviz schematic, static timing, value-domain probing -- and,
// with --attribute, *where* the leak lives: a sharded TVLA campaign with
// per-net attribution prints the ranked culprit table (gate instance,
// gadget role, max |t|, glitch density), writes the annotated netlist
// (DOT heat-colored by rank + CSV heatmap), and dumps a single-trace VCD
// with a glitch-marker companion signal on the top culprit.
//
//   inspect_gadget [gadget] [--attribute] [--top-k <n>]
//                  [--progress[=s]] [--report <path>]
//                  [--backend <event|compiled>]
//
// gadget: naive | ff | pd | trichina | dom-indep | dom-dep (default pd).
// Try `inspect_gadget trichina --attribute`: the top-ranked net is the
// unprotected cross-domain product chain the paper blames.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "eval/gadget_tvla.hpp"
#include "leakage/attribution.hpp"
#include "leakage/probing.hpp"
#include "netlist/area.hpp"
#include "netlist/export.hpp"
#include "netlist/lutmap.hpp"
#include "sim/vcd.hpp"
#include "support/cli.hpp"

using namespace glitchmask;

int main(int argc, char** argv) {
    const CliOptions cli = parse_cli(argc, argv, /*allow_positional=*/true);

    eval::GadgetKind kind = eval::GadgetKind::Pd;
    if (!cli.positional.empty()) {
        const auto parsed = eval::parse_gadget(cli.positional[0]);
        if (!parsed) {
            std::fprintf(stderr, "unknown gadget '%s'; expected one of:",
                         cli.positional[0].c_str());
            for (const eval::GadgetKind g : eval::kAllGadgets)
                std::fprintf(stderr, " %s", eval::gadget_name(g));
            std::fprintf(stderr, "\n");
            return 2;
        }
        kind = *parsed;
    }
    const std::string name = eval::gadget_name(kind);
    std::string ident = name;  // filename/module stem: '-' is not Verilog
    for (char& c : ident)
        if (c == '-') c = '_';

    eval::GadgetTvlaConfig config;
    config.gadget = kind;
    config.run.attribution = cli.attribute;
    config.run.attribution_top_k = cli.top_k;
    config.run.report_path = cli.report_path;
    config.run.backend = cli.backend;  // campaign backend; identical stats

    std::printf("Inspecting %s (zoo harness: %u replicas)\n\n", name.c_str(),
                config.replicas);
    const eval::GadgetHarness harness(kind, config.replicas,
                                      config.placement_seed);
    const netlist::Netlist& nl = harness.nl();

    // Structure and cost.
    const auto luts = netlist::estimate_luts(nl);
    std::printf(
        "cells: %zu   LUT estimate: %zu (of which %zu delay)   FFs: %zu\n",
        nl.size(), luts.luts, luts.delay_luts, luts.ffs);
    std::printf("GE (delay chains as 12 INV per LUT): %.1f\n",
                netlist::total_ge(
                    nl, netlist::AreaModel::nangate45_with_delay_inverters(12)));

    // Timing on the campaign's own placement.
    const sim::CriticalPath critical = sim::analyze_timing(nl, harness.delay_model());
    std::printf("critical path: %.1f ns  -> max %.0f MHz\n",
                critical.delay_ps / 1000.0, critical.max_freq_mhz);

    // Value-domain probing on a single replica (exhaustive over the share
    // and fresh inputs; value-domain security says nothing about glitches,
    // which is exactly the gap attribution makes visible).
    {
        const eval::GadgetCircuit one = eval::build_gadget_circuit(kind, 1);
        leakage::ProbingAnalyzer probing(one.nl, {one.x_in, one.y_in},
                                         one.rand_in);
        std::printf("probing (value domain): %s\n",
                    probing.first_order_secure()
                        ? "every wire first-order independent"
                        : "FIRST-ORDER VIOLATION");
    }

    // Structural exports.
    netlist::write_verilog(nl, ident + ".v", ident);
    {
        std::ofstream dot(ident + ".dot");
        dot << netlist::to_dot(nl);
    }
    std::printf("wrote %s.v and %s.dot\n\n", ident.c_str(), ident.c_str());

    // The campaign itself (deterministic, sharded, crash-safe).
    const eval::GadgetTvlaResult result = eval::run_gadget_tvla(config);
    std::printf("TVLA, %zu traces: max|t1| = %.2f @ cycle %zu,"
                " max|t2| = %.2f -> %s\n",
                result.completed_traces, result.max_abs_t1,
                result.argmax_cycle, result.max_abs_t2,
                result.leaks_first_order ? "LEAKS (1st order)" : "clean");

    if (!cli.attribute) {
        std::printf("\nRe-run with --attribute to rank the culprit nets.\n");
        return 0;
    }

    // Where the leak lives.
    std::printf("\n");
    leakage::print_culprit_table(result.attribution, cli.top_k);
    leakage::write_attribution_csv(ident + "_attribution.csv",
                                   result.attribution);
    {
        std::ofstream dot(ident + "_annotated.dot");
        dot << leakage::attribution_dot(nl, result.attribution, cli.top_k);
    }
    std::printf("wrote %s_attribution.csv and %s_annotated.dot"
                " (heat-colored by |t| rank)\n",
                ident.c_str(), ident.c_str());

    // Single-trace waveform with the glitch marker on the top culprit.
    if (!result.attribution.ranked.empty()) {
        const leakage::NetAttribution& top = result.attribution.ranked.front();
        const eval::GadgetCircuit& circuit = harness.circuit();
        std::vector<netlist::NetId> watch = {circuit.x_in.s0, circuit.x_in.s1,
                                             circuit.y_in.s0, circuit.y_in.s1};
        const std::size_t shown =
            std::min<std::size_t>(cli.top_k, result.attribution.ranked.size());
        for (std::size_t i = 0; i < shown; ++i)
            watch.push_back(result.attribution.ranked[i].net);

        sim::ClockedSim sim(nl, harness.delay_model(), harness.clock());
        sim::VcdWriter vcd(
            nl, ident + ".vcd", watch,
            sim::GlitchMarkerConfig{top.net, harness.clock().period_ps});
        vcd.dump_initial(sim.engine());
        sim.engine().set_sink(&vcd);
        const eval::GadgetStimulus stim =
            eval::gadget_stimulus(harness.fresh_bits(), config.seed, 0);
        harness.drive(sim, stim);
        vcd.close();
        std::printf("wrote %s.vcd -- %s_glitchmark flags %s's glitch windows\n",
                    ident.c_str(), top.name.c_str(), top.name.c_str());
    }

    // Exit status mirrors the verdict so scripts can gate on it: the
    // protected gadgets must come out clean.
    const bool expect_leak = kind == eval::GadgetKind::Naive ||
                             kind == eval::GadgetKind::Trichina;
    return result.leaks_first_order == expect_leak ? 0 : 1;
}
