// Netlist builders for the masked gadgets -- the paper's core contribution
// plus the baselines it compares against.
//
//   * secand2()        raw combinational secAND2 (Fig. 1).  Functionally
//                      correct but *insecure under glitches*; it exists so
//                      the benches can demonstrate exactly that.
//   * secand2_ff()     secAND2 with an internal enable-controlled flip-flop
//                      delaying y1 (Fig. 2): 2-cycle latency, must be reset
//                      between consecutive multiplications.
//   * secand2_pd()     secAND2 with DelayUnit path delays (Fig. 3):
//                      y0 +0, x0/x1 +1, y1 +2 DelayUnits; single cycle, no
//                      reset needed.
//   * trichina_and()   Eq. 1 baseline (1 fresh bit, order-sensitive).
//   * dom_and_indep()  DOM-indep baseline (1 fresh bit, register stage).
//   * dom_and_dep()    DOM-dep-style baseline (3 fresh bits: two refreshes
//                      plus the DOM cross-domain bit).
//   * refresh_shares() fresh-mask refresh of one shared bit.
//   * xor_shares() / not_shares() linear operations.
//
// All builders work share-wise on SharedNet and never mix share domains
// outside the masked-AND cross terms, mirroring the "Keep Hierarchy"
// synthesis discipline of the paper.
#pragma once

#include <string_view>
#include <vector>

#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"

namespace glitchmask::core {

using netlist::CtrlGroup;
using netlist::NetId;
using netlist::Netlist;

/// One masked wire: the two share nets.
struct SharedNet {
    NetId s0 = netlist::kNoNet;
    NetId s1 = netlist::kNoNet;
};

/// A shared multi-bit signal.
using SharedBus = std::vector<SharedNet>;

/// Raw combinational secAND2 (Eq. 2 / Fig. 1).  The caller is responsible
/// for input arrival order; with simultaneous arrivals this gadget leaks
/// under glitches (paper Sec. II-A).
[[nodiscard]] SharedNet secand2(Netlist& nl, SharedNet x, SharedNet y,
                                std::string_view name = "secand2");

/// secAND2-FF (Fig. 2): y1 is delayed through an internal flip-flop in
/// enable group `enable` (reset group `reset`), guaranteeing it arrives
/// one cycle after the other operands.  Latency: 2 cycles.  The flop must
/// be reset (or the gadget's inputs cleared) between unrelated
/// multiplications (paper Sec. II-C).
[[nodiscard]] SharedNet secand2_ff(Netlist& nl, SharedNet x, SharedNet y,
                                   CtrlGroup enable,
                                   CtrlGroup reset = netlist::kAlwaysEnabled,
                                   std::string_view name = "secand2_ff");

struct PathDelayOptions {
    /// LUTs per DelayUnit; the paper finds 10 optimal (Sec. VII-B).
    unsigned luts_per_unit = 10;
    /// Register physically-adjacent chains as coupled pairs (Sec. VII-C).
    bool couple_adjacent = true;
};

/// secAND2-PD (Fig. 3): path-delay enforced arrival order
/// y0 (+0) -> x0, x1 (+1 DelayUnit) -> y1 (+2 DelayUnits).
/// Single-cycle latency, no reset required between multiplications.
[[nodiscard]] SharedNet secand2_pd(Netlist& nl, SharedNet x, SharedNet y,
                                   const PathDelayOptions& options = {},
                                   std::string_view name = "secand2_pd");

/// Trichina AND (Eq. 1): z0 = r ^ x0y0 ^ x0y1 ^ x1y1 ^ x1y0, z1 = r.
/// Built as the literal left-to-right XOR chain; only that evaluation
/// order is secure, which hardware does not honour -- baseline only.
[[nodiscard]] SharedNet trichina_and(Netlist& nl, SharedNet x, SharedNet y,
                                     NetId r,
                                     std::string_view name = "trichina");

/// DOM-indep AND: cross terms x0y1^r and x1y0^r pass through flops in
/// `enable` before recombination.  Latency: 1 cycle, 1 fresh bit.
[[nodiscard]] SharedNet dom_and_indep(Netlist& nl, SharedNet x, SharedNet y,
                                      NetId r,
                                      CtrlGroup enable = netlist::kAlwaysEnabled,
                                      std::string_view name = "dom_indep");

/// DOM-dep-style AND: refreshes both operands (r0, r1) through a register
/// stage, then a DOM-indep multiplication with r2.  3 fresh bits,
/// 2 cycles -- the conservative variant [17] evaluates.
[[nodiscard]] SharedNet dom_and_dep(Netlist& nl, SharedNet x, SharedNet y,
                                    NetId r0, NetId r1, NetId r2,
                                    CtrlGroup enable = netlist::kAlwaysEnabled,
                                    std::string_view name = "dom_dep");

/// Fresh-mask refresh: (s0 ^ m, s1 ^ m).
[[nodiscard]] SharedNet refresh_shares(Netlist& nl, SharedNet a, NetId m,
                                       std::string_view name = "refresh");

/// Share-wise XOR.
[[nodiscard]] SharedNet xor_shares(Netlist& nl, SharedNet a, SharedNet b);

/// Masked NOT: inverts share 0.
[[nodiscard]] SharedNet not_shares(Netlist& nl, SharedNet a);

/// Registers both shares (same groups).
[[nodiscard]] SharedNet reg_shares(Netlist& nl, SharedNet a,
                                   CtrlGroup enable = netlist::kAlwaysEnabled,
                                   CtrlGroup reset = netlist::kAlwaysEnabled,
                                   std::string_view name = {});

/// Two primary inputs forming one masked input bit.
[[nodiscard]] SharedNet shared_input(Netlist& nl, std::string_view name);

/// Shared input bus of `width` masked bits.
[[nodiscard]] SharedBus shared_input_bus(Netlist& nl, std::string_view name,
                                         std::size_t width);

}  // namespace glitchmask::core
