
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/circuits.cpp" "src/CMakeFiles/glitchmask.dir/core/circuits.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/core/circuits.cpp.o.d"
  "/root/repo/src/core/composition.cpp" "src/CMakeFiles/glitchmask.dir/core/composition.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/core/composition.cpp.o.d"
  "/root/repo/src/core/gadgets.cpp" "src/CMakeFiles/glitchmask.dir/core/gadgets.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/core/gadgets.cpp.o.d"
  "/root/repo/src/core/sharing.cpp" "src/CMakeFiles/glitchmask.dir/core/sharing.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/core/sharing.cpp.o.d"
  "/root/repo/src/des/des_reference.cpp" "src/CMakeFiles/glitchmask.dir/des/des_reference.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/des/des_reference.cpp.o.d"
  "/root/repo/src/des/masked_des.cpp" "src/CMakeFiles/glitchmask.dir/des/masked_des.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/des/masked_des.cpp.o.d"
  "/root/repo/src/des/masked_sbox.cpp" "src/CMakeFiles/glitchmask.dir/des/masked_sbox.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/des/masked_sbox.cpp.o.d"
  "/root/repo/src/des/sbox_anf.cpp" "src/CMakeFiles/glitchmask.dir/des/sbox_anf.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/des/sbox_anf.cpp.o.d"
  "/root/repo/src/eval/campaign.cpp" "src/CMakeFiles/glitchmask.dir/eval/campaign.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/eval/campaign.cpp.o.d"
  "/root/repo/src/eval/des_experiments.cpp" "src/CMakeFiles/glitchmask.dir/eval/des_experiments.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/eval/des_experiments.cpp.o.d"
  "/root/repo/src/leakage/moments.cpp" "src/CMakeFiles/glitchmask.dir/leakage/moments.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/leakage/moments.cpp.o.d"
  "/root/repo/src/leakage/probing.cpp" "src/CMakeFiles/glitchmask.dir/leakage/probing.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/leakage/probing.cpp.o.d"
  "/root/repo/src/leakage/snr.cpp" "src/CMakeFiles/glitchmask.dir/leakage/snr.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/leakage/snr.cpp.o.d"
  "/root/repo/src/leakage/ttest.cpp" "src/CMakeFiles/glitchmask.dir/leakage/ttest.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/leakage/ttest.cpp.o.d"
  "/root/repo/src/leakage/tvla.cpp" "src/CMakeFiles/glitchmask.dir/leakage/tvla.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/leakage/tvla.cpp.o.d"
  "/root/repo/src/netlist/area.cpp" "src/CMakeFiles/glitchmask.dir/netlist/area.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/netlist/area.cpp.o.d"
  "/root/repo/src/netlist/builder.cpp" "src/CMakeFiles/glitchmask.dir/netlist/builder.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/netlist/builder.cpp.o.d"
  "/root/repo/src/netlist/export.cpp" "src/CMakeFiles/glitchmask.dir/netlist/export.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/netlist/export.cpp.o.d"
  "/root/repo/src/netlist/lutmap.cpp" "src/CMakeFiles/glitchmask.dir/netlist/lutmap.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/netlist/lutmap.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/glitchmask.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/CMakeFiles/glitchmask.dir/power/power_model.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/power/power_model.cpp.o.d"
  "/root/repo/src/sim/clocked.cpp" "src/CMakeFiles/glitchmask.dir/sim/clocked.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/sim/clocked.cpp.o.d"
  "/root/repo/src/sim/delay_model.cpp" "src/CMakeFiles/glitchmask.dir/sim/delay_model.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/sim/delay_model.cpp.o.d"
  "/root/repo/src/sim/functional.cpp" "src/CMakeFiles/glitchmask.dir/sim/functional.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/sim/functional.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/glitchmask.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/CMakeFiles/glitchmask.dir/sim/vcd.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/sim/vcd.cpp.o.d"
  "/root/repo/src/support/csv.cpp" "src/CMakeFiles/glitchmask.dir/support/csv.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/support/csv.cpp.o.d"
  "/root/repo/src/support/env.cpp" "src/CMakeFiles/glitchmask.dir/support/env.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/support/env.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/glitchmask.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/glitchmask.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/glitchmask.dir/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
