#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <vector>

#include "core/gadgets.hpp"
#include "core/sharing.hpp"
#include "des/des_reference.hpp"
#include "des/masked_des.hpp"
#include "des/masked_sbox.hpp"
#include "des/sbox_anf.hpp"
#include "sim/clocked.hpp"
#include "sim/functional.hpp"
#include "support/rng.hpp"

namespace glitchmask::des {
namespace {

using core::MaskedWord;

// ----- reference DES ------------------------------------------------------

TEST(DesReference, ClassicWorkedExample) {
    // The widely used worked example (key 133457799BBCDFF1).
    EXPECT_EQ(encrypt_block(0x0123456789ABCDEFull, 0x133457799BBCDFF1ull),
              0x85E813540F0AB405ull);
}

TEST(DesReference, ZeroCiphertextVector) {
    EXPECT_EQ(encrypt_block(0x8787878787878787ull, 0x0E329232EA6D0D73ull),
              0x0000000000000000ull);
}

TEST(DesReference, DecryptInvertsEncrypt) {
    Xoshiro256 rng(1);
    for (int i = 0; i < 50; ++i) {
        const std::uint64_t pt = rng();
        const std::uint64_t key = rng();
        EXPECT_EQ(decrypt_block(encrypt_block(pt, key), key), pt);
    }
}

TEST(DesReference, IpFpAreInverse) {
    Xoshiro256 rng(2);
    for (int i = 0; i < 20; ++i) {
        const std::uint64_t v = rng();
        EXPECT_EQ(permute(permute(v, table_ip(), 64), table_fp(), 64), v);
    }
}

TEST(DesReference, SubkeysAre48Bits) {
    const auto subkeys = key_schedule(0x133457799BBCDFF1ull);
    std::set<std::uint64_t> unique;
    for (const std::uint64_t k : subkeys) {
        EXPECT_EQ(k >> 48, 0u);
        unique.insert(k);
    }
    EXPECT_EQ(unique.size(), 16u);
    // Worked-example K1 = 000110110000001011101111111111000111000001110010b.
    EXPECT_EQ(subkeys[0], 0x1B02EFFC7072ull);
}

TEST(DesReference, ComplementationProperty) {
    // DES(~p, ~k) == ~DES(p, k).
    Xoshiro256 rng(3);
    for (int i = 0; i < 20; ++i) {
        const std::uint64_t pt = rng();
        const std::uint64_t key = rng();
        EXPECT_EQ(encrypt_block(~pt, ~key), ~encrypt_block(pt, key));
    }
}

TEST(DesReference, TraceIsConsistentWithBlock) {
    const RoundTrace trace =
        encrypt_trace(0x0123456789ABCDEFull, 0x133457799BBCDFF1ull);
    EXPECT_EQ(trace.ciphertext, 0x85E813540F0AB405ull);
    // Worked example: L1 = EF4A6544, R1 = EF4A6544? (R1 known: EF4A6544 is
    // L2).  Check the structural invariant instead: L_{i+1} == R_i.
    for (unsigned round = 0; round < kRounds; ++round)
        EXPECT_EQ(trace.left[round + 1], trace.right[round]);
}

TEST(DesReference, TdesCollapsesToSingleDesWithEqualKeys) {
    Xoshiro256 rng(4);
    for (int i = 0; i < 20; ++i) {
        const std::uint64_t pt = rng();
        const std::uint64_t key = rng();
        EXPECT_EQ(tdes_encrypt(pt, key, key, key), encrypt_block(pt, key));
    }
}

TEST(DesReference, TdesRoundtrip) {
    Xoshiro256 rng(5);
    for (int i = 0; i < 20; ++i) {
        const std::uint64_t pt = rng();
        const std::uint64_t k1 = rng();
        const std::uint64_t k2 = rng();
        const std::uint64_t k3 = rng();
        EXPECT_EQ(tdes_decrypt(tdes_encrypt(pt, k1, k2, k3), k1, k2, k3), pt);
    }
}

// ----- ANF decomposition --------------------------------------------------

class MiniSboxAnfTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(MiniSboxAnfTest, EvaluatesToTableAndDegreeAtMost3) {
    const auto [box, row] = GetParam();
    const MiniSboxAnf anf = mini_sbox_anf(box, row);
    for (unsigned column = 0; column < 16; ++column)
        EXPECT_EQ(eval_mini_anf(anf, static_cast<std::uint8_t>(column)),
                  mini_sbox(box, row, static_cast<std::uint8_t>(column)))
            << "box=" << box << " row=" << row << " col=" << column;
    EXPECT_LE(max_degree(anf), 3);
    // Every nonlinear monomial must come from the fixed set of 10.
    for (const auto& terms : anf.terms)
        for (const std::uint8_t mask : terms)
            if (std::popcount(mask) >= 2)
                EXPECT_NO_THROW((void)product_monomial_index(mask));
}

INSTANTIATE_TEST_SUITE_P(AllMiniSboxes, MiniSboxAnfTest,
                         ::testing::Combine(::testing::Range(0u, 8u),
                                            ::testing::Range(0u, 4u)));

TEST(SboxAnf, TenCanonicalMonomials) {
    const auto monomials = all_product_monomials();
    ASSERT_EQ(monomials.size(), 10u);
    int deg2 = 0;
    int deg3 = 0;
    for (const std::uint8_t mask : monomials) {
        if (std::popcount(mask) == 2) ++deg2;
        if (std::popcount(mask) == 3) ++deg3;
    }
    EXPECT_EQ(deg2, 6);
    EXPECT_EQ(deg3, 4);
    EXPECT_THROW((void)product_monomial_index(0b0001), std::out_of_range);
}

TEST(SboxAnf, MuxReconstructionMatchesFullSbox) {
    // Row select = (b5, b0); mini S-boxes cover the middle bits.
    for (unsigned box = 0; box < 8; ++box) {
        for (unsigned in = 0; in < 64; ++in) {
            const unsigned row = ((in >> 4) & 2u) | (in & 1u);
            const auto column = static_cast<std::uint8_t>((in >> 1) & 0xFu);
            const MiniSboxAnf anf = mini_sbox_anf(box, row);
            EXPECT_EQ(eval_mini_anf(anf, column),
                      sbox(box, static_cast<std::uint8_t>(in)));
        }
    }
}

// ----- masked S-box netlists ----------------------------------------------

struct SboxHarness {
    core::Netlist nl;
    core::SharedBus in;      // primary inputs (6 masked bits)
    core::SharedBus reg_in;  // registered shares fed to the builder
    netlist::Bus rand;
    core::SharedBus out;
};

SboxHarness make_ff_harness(unsigned box) {
    SboxHarness h;
    h.in = core::shared_input_bus(h.nl, "x", 6);
    h.rand = netlist::input_bus(h.nl, "r", kRandomBitsPerSbox);
    h.reg_in.resize(6);
    for (unsigned i = 0; i < 6; ++i)
        h.reg_in[i] = core::reg_shares(h.nl, h.in[i], /*enable=*/1);
    SboxFfGroups groups;
    groups.g_layer1 = 2;
    groups.g_layer2 = 3;
    groups.g_sync = 4;
    groups.g_mux2 = 5;
    groups.g_out = 6;
    groups.rst_early = 7;
    groups.rst_late = 7;
    h.out = build_masked_sbox_ff(h.nl, box, h.reg_in, h.rand, groups);
    h.nl.freeze();
    return h;
}

SboxHarness make_pd_harness(unsigned box, unsigned luts = 2) {
    SboxHarness h;
    h.in = core::shared_input_bus(h.nl, "x", 6);
    h.rand = netlist::input_bus(h.nl, "r", kRandomBitsPerSbox);
    h.reg_in.resize(6);
    for (unsigned i = 0; i < 6; ++i)
        h.reg_in[i] = core::reg_shares(h.nl, h.in[i], /*enable=*/1);
    SboxPdGroups groups;
    groups.g_mid = 2;
    SboxPdOptions options;
    options.luts_per_unit = luts;
    h.out = build_masked_sbox_pd(h.nl, box, h.reg_in, h.rand, groups, options);
    h.nl.freeze();
    return h;
}

std::uint8_t run_ff_sbox(SboxHarness& h, sim::ZeroDelaySim& sim,
                         std::uint8_t value, Xoshiro256& rng) {
    sim.restart();
    for (unsigned i = 0; i < 6; ++i) {
        const core::MaskedBit b = core::mask_bit(((value >> (5 - i)) & 1) != 0, rng);
        sim.set_input(h.in[i].s0, b.s0);
        sim.set_input(h.in[i].s1, b.s1);
    }
    for (const netlist::NetId r : h.rand) sim.set_input(r, rng.bit());
    sim.step();  // stimulus lands
    auto pulse = [&sim](netlist::CtrlGroup g, bool rst = false) {
        sim.set_enable(g, true);
        if (rst) sim.set_reset(7, true);
        sim.step();
        sim.set_enable(g, false);
        if (rst) sim.set_reset(7, false);
    };
    pulse(1, true);  // input registers + gadget reset
    pulse(2);
    sim.set_enable(4, true);
    pulse(3);
    sim.set_enable(4, false);
    pulse(5);
    pulse(6);
    std::uint8_t out = 0;
    for (unsigned bit = 0; bit < 4; ++bit) {
        const bool v = sim.value(h.out[bit].s0) != sim.value(h.out[bit].s1);
        out |= static_cast<std::uint8_t>(v) << (3 - bit);
    }
    return out;
}

std::uint8_t run_pd_sbox(SboxHarness& h, sim::ZeroDelaySim& sim,
                         std::uint8_t value, Xoshiro256& rng) {
    sim.restart();
    for (unsigned i = 0; i < 6; ++i) {
        const core::MaskedBit b = core::mask_bit(((value >> (5 - i)) & 1) != 0, rng);
        sim.set_input(h.in[i].s0, b.s0);
        sim.set_input(h.in[i].s1, b.s1);
    }
    for (const netlist::NetId r : h.rand) sim.set_input(r, rng.bit());
    sim.step();  // stimulus lands
    sim.set_enable(1, true);
    sim.step();
    sim.set_enable(1, false);
    sim.set_enable(2, true);
    sim.step();
    sim.set_enable(2, false);
    sim.step();  // stage 2/3 settle (zero-delay: values already final)
    std::uint8_t out = 0;
    for (unsigned bit = 0; bit < 4; ++bit) {
        const bool v = sim.value(h.out[bit].s0) != sim.value(h.out[bit].s1);
        out |= static_cast<std::uint8_t>(v) << (3 - bit);
    }
    return out;
}

class MaskedSboxTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MaskedSboxTest, FfFlavourMatchesTableExhaustively) {
    const unsigned box = GetParam();
    SboxHarness h = make_ff_harness(box);
    sim::ZeroDelaySim sim(h.nl);
    Xoshiro256 rng(10 + box);
    for (unsigned value = 0; value < 64; ++value)
        EXPECT_EQ(run_ff_sbox(h, sim, static_cast<std::uint8_t>(value), rng),
                  sbox(box, static_cast<std::uint8_t>(value)))
            << "box=" << box << " in=" << value;
}

TEST_P(MaskedSboxTest, PdFlavourMatchesTableExhaustively) {
    const unsigned box = GetParam();
    SboxHarness h = make_pd_harness(box);
    sim::ZeroDelaySim sim(h.nl);
    Xoshiro256 rng(20 + box);
    for (unsigned value = 0; value < 64; ++value)
        EXPECT_EQ(run_pd_sbox(h, sim, static_cast<std::uint8_t>(value), rng),
                  sbox(box, static_cast<std::uint8_t>(value)))
            << "box=" << box << " in=" << value;
}

INSTANTIATE_TEST_SUITE_P(AllBoxes, MaskedSboxTest, ::testing::Range(0u, 8u));

TEST(MaskedSbox, FfUsesThirtySecand2) {
    SboxHarness h = make_ff_harness(0);
    // 30 secAND2 gadgets, each with exactly two SecAnd3 output cells.
    const auto hist = h.nl.kind_histogram();
    EXPECT_EQ(hist[static_cast<std::size_t>(netlist::CellKind::SecAnd3)],
              2u * kSecand2PerSbox);
}

TEST(MaskedSbox, PdRegistersCoupledChains) {
    SboxHarness h = make_pd_harness(0, /*luts=*/2);
    EXPECT_GT(h.nl.coupled_pairs().size(), 0u);
}

// ----- full masked DES cores ----------------------------------------------

TEST(MaskedDes, FfCoreMatchesReferenceZeroDelay) {
    const MaskedDesCore core(MaskedDesOptions{.flavor = CoreFlavor::FF});
    sim::ZeroDelaySim sim(core.nl());
    Xoshiro256 rng(30);
    // Known vector first.
    sim.restart();
    EXPECT_EQ(core.encrypt_value(sim, 0x0123456789ABCDEFull,
                                 0x133457799BBCDFF1ull, &rng),
              0x85E813540F0AB405ull);
    for (int i = 0; i < 6; ++i) {
        const std::uint64_t pt = rng();
        const std::uint64_t key = rng();
        sim.restart();
        EXPECT_EQ(core.encrypt_value(sim, pt, key, &rng),
                  encrypt_block(pt, key))
            << "i=" << i;
    }
}

TEST(MaskedDes, PdCoreMatchesReferenceZeroDelay) {
    const MaskedDesCore core(MaskedDesOptions{.flavor = CoreFlavor::PD,
                                              .delayunit_luts = 1});
    sim::ZeroDelaySim sim(core.nl());
    Xoshiro256 rng(31);
    sim.restart();
    EXPECT_EQ(core.encrypt_value(sim, 0x0123456789ABCDEFull,
                                 0x133457799BBCDFF1ull, &rng),
              0x85E813540F0AB405ull);
    for (int i = 0; i < 6; ++i) {
        const std::uint64_t pt = rng();
        const std::uint64_t key = rng();
        sim.restart();
        EXPECT_EQ(core.encrypt_value(sim, pt, key, &rng),
                  encrypt_block(pt, key))
            << "i=" << i;
    }
}

TEST(MaskedDes, PrngOffStillEncryptsCorrectly) {
    const MaskedDesCore core(MaskedDesOptions{.flavor = CoreFlavor::FF});
    sim::ZeroDelaySim sim(core.nl());
    sim.restart();
    EXPECT_EQ(core.encrypt_value(sim, 0x0123456789ABCDEFull,
                                 0x133457799BBCDFF1ull, nullptr),
              0x85E813540F0AB405ull);
}

TEST(MaskedDes, SharesActuallyMaskTheCiphertext) {
    const MaskedDesCore core(MaskedDesOptions{.flavor = CoreFlavor::FF});
    sim::ZeroDelaySim sim(core.nl());
    Xoshiro256 rng(32);
    sim.restart();
    const MaskedWord pt = core::mask_word(0x0123456789ABCDEFull, 64, rng);
    const MaskedWord key = core::mask_word(0x133457799BBCDFF1ull, 64, rng);
    const MaskedWord ct = core.encrypt(sim, pt, key, &rng);
    EXPECT_EQ(ct.value(), 0x85E813540F0AB405ull);
    EXPECT_NE(ct.s0, 0u);  // share 0 is a nontrivial mask
    EXPECT_NE(ct.s0, ct.value());
}

TEST(MaskedDes, FfCoreMatchesReferenceUnderTiming) {
    const MaskedDesCore core(MaskedDesOptions{.flavor = CoreFlavor::FF});
    const sim::DelayModel dm(core.nl(), sim::DelayConfig::spartan6());
    sim::ClockConfig clock;
    clock.period_ps = core.recommended_period();
    sim::ClockedSim sim(core.nl(), dm, clock);
    Xoshiro256 rng(33);
    for (int i = 0; i < 2; ++i) {
        const std::uint64_t pt = rng();
        const std::uint64_t key = rng();
        sim.restart();
        EXPECT_EQ(core.encrypt_value(sim, pt, key, &rng),
                  encrypt_block(pt, key))
            << "i=" << i;
    }
}

TEST(MaskedDes, PdCoreMatchesReferenceUnderTiming) {
    const MaskedDesCore core(MaskedDesOptions{.flavor = CoreFlavor::PD,
                                              .delayunit_luts = 10});
    const sim::DelayModel dm(core.nl(), sim::DelayConfig::spartan6());
    sim::ClockConfig clock;
    clock.period_ps = core.recommended_period();
    sim::ClockedSim sim(core.nl(), dm, clock);
    Xoshiro256 rng(34);
    const std::uint64_t pt = rng();
    const std::uint64_t key = rng();
    sim.restart();
    EXPECT_EQ(core.encrypt_value(sim, pt, key, &rng), encrypt_block(pt, key));
}

TEST(MaskedDes, BatchEncryptMatchesScalarPerLane) {
    const MaskedDesCore core(MaskedDesOptions{.flavor = CoreFlavor::FF});
    const sim::DelayModel dm(core.nl(), sim::DelayConfig::spartan6());
    sim::ClockConfig clock;
    clock.period_ps = core.recommended_period();

    constexpr unsigned kCount = 5;
    std::vector<MaskedWord> pts, keys;
    std::vector<Xoshiro256> prngs;
    Xoshiro256 rng(77);
    for (unsigned lane = 0; lane < kCount; ++lane) {
        pts.push_back(core::mask_word(rng(), 64, rng));
        keys.push_back(core::mask_word(rng(), 64, rng));
        prngs.emplace_back(rng());
    }

    // Scalar references, each lane from a copy of its refresh generator.
    sim::ClockedSim scalar(core.nl(), dm, clock);
    std::vector<MaskedWord> want;
    for (unsigned lane = 0; lane < kCount; ++lane) {
        Xoshiro256 prng = prngs[lane];
        scalar.restart();
        want.push_back(core.encrypt(scalar, pts[lane], keys[lane], &prng));
    }

    sim::BatchClockedSim batch(core.nl(), dm, clock);
    batch.restart();
    const auto got = core.encrypt_batch(batch, pts, keys, prngs);
    for (unsigned lane = 0; lane < kCount; ++lane) {
        EXPECT_EQ(got[lane].s0, want[lane].s0) << "lane " << lane;
        EXPECT_EQ(got[lane].s1, want[lane].s1) << "lane " << lane;
        EXPECT_EQ(got[lane].value(),
                  encrypt_block(pts[lane].value(), keys[lane].value()))
            << "lane " << lane;
    }
    // Unused lanes ran the all-zero stimulus with refresh off.
    EXPECT_EQ(got[kCount].value(), encrypt_block(0, 0));
}

TEST(MaskedDes, StructuralCounts) {
    const MaskedDesCore ff(MaskedDesOptions{.flavor = CoreFlavor::FF});
    EXPECT_EQ(ff.cycles_per_round(), 7u);
    EXPECT_EQ(ff.total_cycles(), 113u);
    const MaskedDesCore pd(MaskedDesOptions{.flavor = CoreFlavor::PD,
                                            .delayunit_luts = 1});
    EXPECT_EQ(pd.cycles_per_round(), 2u);
    EXPECT_EQ(pd.total_cycles(), 34u);
    EXPECT_EQ(ff.random_bits_per_round(), 14u);
}

// ----- DOM baseline --------------------------------------------------------

SboxHarness make_dom_harness(unsigned box) {
    SboxHarness h;
    h.in = core::shared_input_bus(h.nl, "x", 6);
    h.rand = netlist::input_bus(h.nl, "r", kDomRandomBitsPerSbox);
    h.reg_in.resize(6);
    for (unsigned i = 0; i < 6; ++i)
        h.reg_in[i] = core::reg_shares(h.nl, h.in[i], /*enable=*/1);
    SboxDomGroups groups;
    groups.g_dom1 = 2;
    groups.g_dom2 = 3;
    groups.g_dom3 = 4;
    groups.g_out = 5;
    h.out = build_masked_sbox_dom(h.nl, box, h.reg_in, h.rand, groups);
    h.nl.freeze();
    return h;
}

std::uint8_t run_dom_sbox(SboxHarness& h, sim::ZeroDelaySim& sim,
                          std::uint8_t value, Xoshiro256& rng) {
    sim.restart();
    for (unsigned i = 0; i < 6; ++i) {
        const core::MaskedBit b =
            core::mask_bit(((value >> (5 - i)) & 1) != 0, rng);
        sim.set_input(h.in[i].s0, b.s0);
        sim.set_input(h.in[i].s1, b.s1);
    }
    for (const netlist::NetId r : h.rand) sim.set_input(r, rng.bit());
    sim.step();  // stimulus lands
    for (const netlist::CtrlGroup g : {1, 2, 3, 4, 5}) {
        sim.set_enable(g, true);
        sim.step();
        sim.set_enable(g, false);
    }
    std::uint8_t out = 0;
    for (unsigned bit = 0; bit < 4; ++bit) {
        const bool v = sim.value(h.out[bit].s0) != sim.value(h.out[bit].s1);
        out |= static_cast<std::uint8_t>(v) << (3 - bit);
    }
    return out;
}

TEST_P(MaskedSboxTest, DomFlavourMatchesTableExhaustively) {
    const unsigned box = GetParam();
    SboxHarness h = make_dom_harness(box);
    sim::ZeroDelaySim sim(h.nl);
    Xoshiro256 rng(40 + box);
    for (unsigned value = 0; value < 64; ++value)
        EXPECT_EQ(run_dom_sbox(h, sim, static_cast<std::uint8_t>(value), rng),
                  sbox(box, static_cast<std::uint8_t>(value)))
            << "box=" << box << " in=" << value;
}

TEST(MaskedDes, DomCoreMatchesReferenceZeroDelay) {
    const MaskedDesCore core(MaskedDesOptions{.flavor = CoreFlavor::DOM});
    EXPECT_EQ(core.random_bits_per_round(), 30u);
    EXPECT_EQ(core.cycles_per_round(), 7u);
    sim::ZeroDelaySim sim(core.nl());
    Xoshiro256 rng(41);
    sim.restart();
    EXPECT_EQ(core.encrypt_value(sim, 0x0123456789ABCDEFull,
                                 0x133457799BBCDFF1ull, &rng),
              0x85E813540F0AB405ull);
    for (int i = 0; i < 4; ++i) {
        const std::uint64_t pt = rng();
        const std::uint64_t key = rng();
        sim.restart();
        EXPECT_EQ(core.encrypt_value(sim, pt, key, &rng),
                  encrypt_block(pt, key))
            << "i=" << i;
    }
}

TEST(MaskedDes, DomCoreMatchesReferenceUnderTiming) {
    const MaskedDesCore core(MaskedDesOptions{.flavor = CoreFlavor::DOM});
    const sim::DelayModel dm(core.nl(), sim::DelayConfig::spartan6());
    sim::ClockConfig clock;
    clock.period_ps = core.recommended_period();
    sim::ClockedSim sim(core.nl(), dm, clock);
    Xoshiro256 rng(42);
    const std::uint64_t pt = rng();
    const std::uint64_t key = rng();
    sim.restart();
    EXPECT_EQ(core.encrypt_value(sim, pt, key, &rng), encrypt_block(pt, key));
}

}  // namespace
}  // namespace glitchmask::des
