// Sharded TVLA driver over the masked-AND gadget zoo -- the attribution
// engine's primary workload.
//
// bench/gadget_zoo runs the same experiment single-threaded for its
// ablation table; this driver puts the identical harness (16 replicated
// gadgets behind shared input registers, the zoo's 5-window drive
// schedule) on the deterministic sharded campaign engine, with the full
// crash-safe runtime and optional per-net leakage attribution.  That is
// what makes the paper's spatial argument checkable: attribute the
// Trichina campaign and the top-ranked net is the cross-domain product
// chain; attribute secAND2-FF/PD and no net crosses the threshold.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/gadgets.hpp"
#include "eval/checkpoint.hpp"
#include "leakage/attribution.hpp"
#include "sim/clocked.hpp"
#include "support/thread_pool.hpp"

namespace glitchmask::eval {

/// The zoo's gadget selection (bench/gadget_zoo kZoo order).
enum class GadgetKind { Naive, Ff, Pd, Trichina, DomIndep, DomDep };

inline constexpr GadgetKind kAllGadgets[] = {
    GadgetKind::Naive, GadgetKind::Ff,       GadgetKind::Pd,
    GadgetKind::Trichina, GadgetKind::DomIndep, GadgetKind::DomDep,
};

/// Canonical CLI name ("naive", "ff", "pd", "trichina", "dom-indep",
/// "dom-dep").
[[nodiscard]] const char* gadget_name(GadgetKind kind) noexcept;

/// Parses a gadget selector; accepts the canonical names plus common
/// aliases ("secand2", "secand2-ff", "secand2_pd", ...).  nullopt on an
/// unknown name.
[[nodiscard]] std::optional<GadgetKind> parse_gadget(std::string_view name);

/// Fresh random input bits the gadget consumes per evaluation.
[[nodiscard]] unsigned gadget_fresh_bits(GadgetKind kind) noexcept;

struct GadgetTvlaConfig {
    GadgetKind gadget = GadgetKind::Naive;
    unsigned replicas = 16;       // parallel instances (SNR, like the zoo)
    std::size_t traces = 12000;   // the zoo's campaign size
    double noise_sigma = 0.5;     // measurement noise on the power trace
    std::uint64_t seed = 1;       // classes, masks, fresh bits, noise
    std::uint64_t placement_seed = 1;  // delay-model jitter
    int max_test_order = 2;
    unsigned workers = 0;         // 0 = auto (env / cores)
    std::size_t block_size = 64;
    unsigned lanes = 0;           // 1 scalar / 64 bitsliced / 0 auto
    CampaignRunOptions run;       // checkpointing, reports, attribution
};

struct GadgetTvlaResult {
    GadgetKind gadget = GadgetKind::Naive;
    double max_abs_t1 = 0.0;
    std::size_t argmax_cycle = 0;
    double max_abs_t2 = 0.0;
    bool leaks_first_order = false;
    std::size_t completed_traces = 0;
    bool cancelled = false;
    bool resumed = false;
    /// Per-net culprit ranking; disabled unless config.run.attribution /
    /// GLITCHMASK_ATTRIBUTION was set.
    leakage::AttributionResult attribution;
};

/// Per-trace stimulus, a pure function of (seed, trace index): class
/// choice, the four input share values, and the gadget's fresh bits.
struct GadgetStimulus {
    bool fixed = false;
    std::array<bool, 4> shares{};  // x0, x1, y0, y1
    std::vector<bool> fresh;
};

[[nodiscard]] GadgetStimulus gadget_stimulus(unsigned fresh_bits,
                                             std::uint64_t seed,
                                             std::size_t trace_index);

/// The zoo circuit: `replicas` gadget instances behind shared input
/// registers (enable group 1), frozen.
struct GadgetCircuit {
    GadgetKind kind = GadgetKind::Naive;
    unsigned replicas = 0;
    core::Netlist nl;
    core::SharedNet x_in{}, y_in{};
    std::vector<netlist::NetId> rand_in;
    /// Some gadgets use a second enable stage (secAND2-FF, DOM).
    bool has_stage2 = false;
};

[[nodiscard]] GadgetCircuit build_gadget_circuit(GadgetKind kind,
                                                 unsigned replicas);

/// The zoo harness as a reusable object; workers share the netlist and
/// delay model read-only.  inspect_gadget uses nl() for netlist exports
/// and single-trace VCD replays.
class GadgetHarness {
public:
    /// Power bins per trace: input load + enable(1) + enable(2) + settle,
    /// one spare (the zoo's schedule).
    static constexpr std::size_t kCycles = 5;

    GadgetHarness(GadgetKind kind, unsigned replicas,
                  std::uint64_t placement_seed);

    [[nodiscard]] const netlist::Netlist& nl() const noexcept {
        return circuit_.nl;
    }
    [[nodiscard]] const GadgetCircuit& circuit() const noexcept {
        return circuit_;
    }
    [[nodiscard]] GadgetKind kind() const noexcept { return circuit_.kind; }
    [[nodiscard]] unsigned fresh_bits() const noexcept {
        return static_cast<unsigned>(circuit_.rand_in.size());
    }
    [[nodiscard]] const sim::DelayModel& delay_model() const noexcept {
        return dm_;
    }
    [[nodiscard]] sim::ClockConfig clock() const noexcept { return clock_; }

    /// Applies one trace's stimulus and runs the 5-window drive schedule
    /// (the caller restarts the simulator and arms the recorder first).
    void drive(sim::ClockedSim& sim, const GadgetStimulus& stim) const;

    /// Runs one campaign on `pool` (scalar or bitsliced per config.lanes).
    [[nodiscard]] GadgetTvlaResult run(const GadgetTvlaConfig& config,
                                       ThreadPool& pool) const;

private:
    GadgetCircuit circuit_;
    sim::DelayModel dm_;
    sim::ClockConfig clock_;
};

/// The campaign identity of one gadget TVLA run -- the fingerprint its
/// checkpoints carry.  Exposed so the service layer can key its result
/// cache without building the harness.
[[nodiscard]] CampaignFingerprint gadget_fingerprint(
    const GadgetTvlaConfig& config);

/// One-shot convenience: builds the harness and pool and runs the
/// campaign.
[[nodiscard]] GadgetTvlaResult run_gadget_tvla(const GadgetTvlaConfig& config);

}  // namespace glitchmask::eval
