#include "support/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "support/env.hpp"
#include "support/telemetry.hpp"

namespace glitchmask {

namespace {

thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker = -1;

}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
    const unsigned n = workers > 0 ? workers : default_worker_count();
    queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(sleep_mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& thread : threads_) thread.join();
}

unsigned ThreadPool::default_worker_count() {
    const std::int64_t env = env_int("GLITCHMASK_WORKERS", 0);
    if (env > 0) return static_cast<unsigned>(env);
    return std::max(1u, std::thread::hardware_concurrency());
}

int ThreadPool::current_worker() const noexcept {
    return tls_pool == this ? tls_worker : -1;
}

void ThreadPool::submit(Task task) {
    const int own = current_worker();
    std::size_t target;
    if (own >= 0) {
        target = static_cast<std::size_t>(own);
    } else {
        const std::lock_guard<std::mutex> lock(sleep_mutex_);
        target = next_queue_;
        next_queue_ = (next_queue_ + 1) % queues_.size();
    }
    {
        const std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    {
        const std::lock_guard<std::mutex> lock(sleep_mutex_);
        ++queued_;
    }
    wake_.notify_one();
}

bool ThreadPool::try_pop_own(unsigned id, Task& out) {
    WorkerQueue& queue = *queues_[id];
    const std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tasks.empty()) return false;
    out = std::move(queue.tasks.back());  // LIFO: newest first, cache-warm
    queue.tasks.pop_back();
    return true;
}

bool ThreadPool::try_steal(unsigned id, Task& out) {
    for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
        WorkerQueue& victim = *queues_[(id + offset) % queues_.size()];
        const std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.tasks.empty()) continue;
        out = std::move(victim.tasks.front());  // FIFO end: oldest first
        victim.tasks.pop_front();
        return true;
    }
    return false;
}

void ThreadPool::worker_loop(unsigned id) {
    tls_pool = this;
    tls_worker = static_cast<int>(id);
    for (;;) {
        Task task;
        bool stolen = false;
        bool got = try_pop_own(id, task);
        if (!got) got = stolen = try_steal(id, task);
        if (got) {
            {
                const std::lock_guard<std::mutex> lock(sleep_mutex_);
                --queued_;
            }
            if (telemetry::enabled()) {
                telemetry::Shard& shard = telemetry::shard();
                shard.add(telemetry::Counter::kPoolTasksExecuted, 1);
                if (stolen)
                    shard.add(telemetry::Counter::kPoolTasksStolen, 1);
            }
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        if (telemetry::enabled()) {
            const auto idle_start = std::chrono::steady_clock::now();
            wake_.wait(lock, [this] { return stop_ || queued_ > 0; });
            const auto idle_ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - idle_start)
                    .count();
            telemetry::shard().add(telemetry::Counter::kPoolIdleNanos,
                                   static_cast<std::uint64_t>(idle_ns));
        } else {
            wake_.wait(lock, [this] { return stop_ || queued_ > 0; });
        }
        if (stop_ && queued_ == 0) return;
    }
}

void TaskGroup::run(ThreadPool::Task task) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
    }
    pool_.submit([this, task = std::move(task)] {
        const bool skip = cancel_ != nullptr && cancel_->requested();
        std::exception_ptr error;
        if (!skip) {
            try {
                task();
            } catch (...) {
                error = std::current_exception();
            }
        }
        const std::lock_guard<std::mutex> lock(mutex_);
        if (skip) ++skipped_;
        if (error != nullptr && error_ == nullptr) error_ = error;
        if (--pending_ == 0) done_.notify_all();
    });
}

void TaskGroup::wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
    if (error_ != nullptr) {
        const std::exception_ptr error = std::exchange(error_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void TaskGroup::wait_no_throw() noexcept {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace glitchmask
