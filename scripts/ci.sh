#!/usr/bin/env bash
# Reference CI recipe: configure + build the Release preset and run the
# full test suite.  Optional sanitizer passes ride on the asan/tsan
# presets: `scripts/ci.sh asan` (or tsan) builds and tests that preset
# instead.  Exits nonzero on any build or test failure.
set -euo pipefail
cd "$(dirname "$0")/.."

preset="${1:-release}"
case "$preset" in
  release|asan|tsan) ;;
  *) echo "usage: scripts/ci.sh [release|asan|tsan]" >&2; exit 2 ;;
esac

jobs="$(nproc 2>/dev/null || echo 2)"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$jobs"
ctest --preset "$preset" -j "$jobs"
