#include "service/socket_server.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/log.hpp"

namespace glitchmask::service {

namespace {

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

SocketServer::SocketServer(SocketServerConfig config)
    : config_(std::move(config)) {}

SocketServer::~SocketServer() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto& [id, client] : clients_)
            if (client.fd >= 0) ::close(client.fd);
        clients_.clear();
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        ::unlink(config_.socket_path.c_str());
    }
    for (const int fd : wake_pipe_)
        if (fd >= 0) ::close(fd);
}

void SocketServer::set_line_handler(LineHandler handler) {
    on_line_ = std::move(handler);
}
void SocketServer::set_disconnect_handler(DisconnectHandler handler) {
    on_disconnect_ = std::move(handler);
}
void SocketServer::set_tick_handler(TickHandler handler) {
    on_tick_ = std::move(handler);
}

void SocketServer::listen() {
    if (config_.socket_path.size() >= sizeof(sockaddr_un{}.sun_path))
        throw std::runtime_error("socket path too long: " +
                                 config_.socket_path);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) fail("socket");
    ::unlink(config_.socket_path.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0)
        fail("bind " + config_.socket_path);
    if (::listen(listen_fd_, 16) != 0) fail("listen " + config_.socket_path);
    set_nonblocking(listen_fd_);
    if (::pipe(wake_pipe_) != 0) fail("pipe");
    set_nonblocking(wake_pipe_[0]);
    set_nonblocking(wake_pipe_[1]);
}

void SocketServer::stop() {
    stop_.store(true, std::memory_order_relaxed);
    wake();
}

void SocketServer::wake() {
    if (wake_pipe_[1] >= 0) {
        const char byte = 'w';
        (void)!::write(wake_pipe_[1], &byte, 1);
    }
}

bool SocketServer::send(ClientId client_id, const std::string& line,
                        bool droppable) {
    bool queued = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = clients_.find(client_id);
        if (it == clients_.end() || it->second.closing) return false;
        Client& client = it->second;
        if (droppable && client.out.size() > config_.soft_buffer_bytes)
            return false;  // advisory line dropped under backpressure
        client.out += line;
        if (client.out.size() > config_.hard_buffer_bytes) {
            // The client has stopped reading; flush what fits and close.
            client.closing = true;
        }
        queued = true;
    }
    wake();
    return queued;
}

void SocketServer::run() {
    std::vector<pollfd> fds;
    std::vector<ClientId> ids;
    while (!stop_.load(std::memory_order_relaxed)) {
        fds.clear();
        ids.clear();
        fds.push_back(pollfd{listen_fd_, POLLIN, 0});
        fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (const auto& [id, client] : clients_) {
                short events = POLLIN;
                if (!client.out.empty()) events |= POLLOUT;
                fds.push_back(pollfd{client.fd, events, 0});
                ids.push_back(id);
            }
        }
        const int ready =
            ::poll(fds.data(), fds.size(), config_.poll_interval_ms);
        if (ready < 0 && errno != EINTR) fail("poll");
        if (ready > 0) {
            if (fds[0].revents & POLLIN) accept_clients();
            if (fds[1].revents & POLLIN) drain_wake_pipe();
            for (std::size_t i = 2; i < fds.size(); ++i)
                if (fds[i].revents != 0)
                    service_client(ids[i - 2], fds[i].revents);
        }
        if (on_tick_) on_tick_();
    }
    flush_on_stop();
}

void SocketServer::flush_on_stop() {
    // Best-effort, bounded drain of queued replies (e.g. the
    // shutting_down ack a stop() request races against): a stop must not
    // eat lines already promised to connected clients, but a wedged
    // client must not be able to hold shutdown hostage either.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
    for (;;) {
        std::vector<pollfd> fds;
        std::vector<ClientId> ids;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (const auto& [id, client] : clients_) {
                if (client.out.empty()) continue;
                fds.push_back(pollfd{client.fd, POLLOUT, 0});
                ids.push_back(id);
            }
        }
        if (fds.empty()) return;
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
        if (left.count() <= 0) return;
        const int ready = ::poll(fds.data(), fds.size(),
                                 static_cast<int>(left.count()));
        if (ready <= 0) {
            if (ready < 0 && errno == EINTR) continue;
            return;
        }
        for (std::size_t i = 0; i < fds.size(); ++i)
            if (fds[i].revents != 0) service_client(ids[i], POLLOUT);
    }
}

void SocketServer::accept_clients() {
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
                return;
            log::warn(std::string("service: accept failed: ") +
                      std::strerror(errno));
            return;
        }
        set_nonblocking(fd);
        std::lock_guard<std::mutex> lock(mutex_);
        Client client;
        client.fd = fd;
        clients_[next_client_++] = std::move(client);
    }
}

void SocketServer::service_client(ClientId id, short revents) {
    if (revents & (POLLHUP | POLLERR | POLLNVAL)) {
        close_client(id);
        return;
    }
    if (revents & POLLIN) {
        char buffer[4096];
        for (;;) {
            int fd;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                const auto it = clients_.find(id);
                if (it == clients_.end()) return;
                fd = it->second.fd;
            }
            const ssize_t n = ::read(fd, buffer, sizeof buffer);
            if (n == 0) {
                close_client(id);
                return;
            }
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK) break;
                if (errno == EINTR) continue;
                close_client(id);
                return;
            }
            std::string pending;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                const auto it = clients_.find(id);
                if (it == clients_.end()) return;
                it->second.in.append(buffer, static_cast<std::size_t>(n));
                pending = std::move(it->second.in);
                it->second.in.clear();
            }
            // Hand complete lines to the owner outside the lock (the
            // handler may call send()).
            std::size_t start = 0;
            for (;;) {
                const std::size_t newline = pending.find('\n', start);
                if (newline == std::string::npos) break;
                if (newline > start && on_line_)
                    on_line_(id, pending.substr(start, newline - start));
                start = newline + 1;
            }
            if (start < pending.size()) {
                std::lock_guard<std::mutex> lock(mutex_);
                const auto it = clients_.find(id);
                if (it != clients_.end())
                    it->second.in = pending.substr(start) + it->second.in;
            }
        }
    }
    if (revents & POLLOUT) {
        std::unique_lock<std::mutex> lock(mutex_);
        const auto it = clients_.find(id);
        if (it == clients_.end()) return;
        Client& client = it->second;
        while (!client.out.empty()) {
            const ssize_t n =
                ::write(client.fd, client.out.data(), client.out.size());
            if (n < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK) break;
                if (errno == EINTR) continue;
                lock.unlock();
                close_client(id);
                return;
            }
            client.out.erase(0, static_cast<std::size_t>(n));
        }
        if (client.out.empty() && client.closing) {
            lock.unlock();
            close_client(id);
        }
    }
}

void SocketServer::close_client(ClientId id) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = clients_.find(id);
        if (it == clients_.end()) return;
        if (it->second.fd >= 0) ::close(it->second.fd);
        clients_.erase(it);
    }
    if (on_disconnect_) on_disconnect_(id);
}

void SocketServer::drain_wake_pipe() {
    char buffer[256];
    while (::read(wake_pipe_[0], buffer, sizeof buffer) > 0) {
    }
}

}  // namespace glitchmask::service
