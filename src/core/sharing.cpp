#include "core/sharing.hpp"

namespace glitchmask::core {

MaskedWord mask_word(std::uint64_t value, unsigned width, Xoshiro256& rng) {
    const std::uint64_t mask = (width >= 64) ? ~std::uint64_t{0}
                                             : ((std::uint64_t{1} << width) - 1);
    const std::uint64_t r = rng.bits(width == 0 ? 1 : width) & mask;
    return MaskedWord{r, (r ^ value) & mask};
}

}  // namespace glitchmask::core
