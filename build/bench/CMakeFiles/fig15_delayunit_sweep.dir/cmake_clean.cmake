file(REMOVE_RECURSE
  "CMakeFiles/fig15_delayunit_sweep.dir/fig15_delayunit_sweep.cpp.o"
  "CMakeFiles/fig15_delayunit_sweep.dir/fig15_delayunit_sweep.cpp.o.d"
  "fig15_delayunit_sweep"
  "fig15_delayunit_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_delayunit_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
