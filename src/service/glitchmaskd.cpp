// glitchmaskd: the campaign service daemon.
//
// Accepts CampaignRequests over a local Unix socket (newline-delimited
// JSON, see service/protocol.hpp), schedules them on a bounded executor
// pool with priorities and an explicit-overload admission policy, streams
// progress back, dedupes identical campaigns through the fingerprint
// cache, and survives the unglamorous parts: full disks degrade to
// in-memory progress, corrupt spool snapshots are quarantined, wedged
// jobs are cancelled by the watchdog with a resumable checkpoint, SIGTERM
// drains to a state file a restarted daemon picks up.
//
//   glitchmaskd --socket /tmp/gm.sock --spool /var/tmp/gm-spool
//               --state /var/tmp/gm-spool/state.json --executors 1 &
//   printf '{"op":"submit","kind":"gadget_tvla","gadget":"trichina",
//           "traces":2000}\n' | nc -U /tmp/gm.sock
//
// --faults installs a deterministic fault plan (support/fault.hpp) for
// chaos testing; GLITCHMASK_FAULTS does the same from the environment.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "obs/ledger.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "service/socket_server.hpp"
#include "support/atomic_file.hpp"
#include "support/cancel.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace {

using namespace glitchmask;
using namespace glitchmask::service;

void usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [options]\n"
        "  --socket PATH     Unix socket to serve on (required)\n"
        "  --spool DIR       checkpoint spool directory (resumable jobs)\n"
        "  --state PATH      drain state file (resubmitted on restart)\n"
        "  --executors N     concurrent campaign runs (default 1)\n"
        "  --queue N         admission queue capacity (default 16)\n"
        "  --cache N         result cache entries (default 64)\n"
        "  --history N       terminal jobs kept queryable (default 256,\n"
        "                    0 = unbounded)\n"
        "  --watchdog SEC    cancel jobs with no progress for SEC seconds\n"
        "  --trace-dir DIR   enable span tracing; write one Chrome-trace\n"
        "                    JSON per terminal job (job-<id>.trace.json)\n"
        "  --metrics-file P  enable telemetry; atomically refresh a\n"
        "                    Prometheus-text exposition file while serving\n"
        "  --ledger PATH     append every executed terminal job to the\n"
        "                    CRC-guarded NDJSON results ledger and serve\n"
        "                    the 'history' verb from it\n"
        "  --faults SPEC     install a deterministic fault plan\n",
        argv0);
}

/// Renders the full registry (counters + histograms + gauges) as
/// Prometheus text and atomically replaces `path`; scrape-safe at any
/// moment.  Failures are logged, never fatal -- metrics must not take the
/// daemon down.
void refresh_metrics_file(const std::string& path,
                          CampaignService& campaign_service) {
    (void)campaign_service.metrics_info();  // refreshes the service gauges
    const std::string text =
        telemetry::render_prometheus_text(telemetry::snapshot());
    try {
        atomic_write_file(path,
                          std::span<const std::uint8_t>(
                              reinterpret_cast<const std::uint8_t*>(
                                  text.data()),
                              text.size()));
    } catch (const std::exception& error) {
        log::warn(std::string("glitchmaskd: cannot write metrics file: ") +
                  error.what());
    }
}

}  // namespace

int main(int argc, char** argv) {
    ServiceConfig service_config;
    SocketServerConfig socket_config;
    std::string faults;
    std::string metrics_file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            socket_config.socket_path = next();
        } else if (arg == "--spool") {
            service_config.spool_dir = next();
        } else if (arg == "--state") {
            service_config.state_path = next();
        } else if (arg == "--executors") {
            service_config.executors =
                static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--queue") {
            service_config.queue_capacity =
                static_cast<std::size_t>(std::atol(next()));
        } else if (arg == "--cache") {
            service_config.cache_capacity =
                static_cast<std::size_t>(std::atol(next()));
        } else if (arg == "--history") {
            service_config.history_capacity =
                static_cast<std::size_t>(std::atol(next()));
        } else if (arg == "--watchdog") {
            service_config.watchdog_timeout_sec = std::atof(next());
        } else if (arg == "--trace-dir") {
            service_config.trace_dir = next();
        } else if (arg == "--metrics-file") {
            metrics_file = next();
        } else if (arg == "--ledger") {
            service_config.ledger_path = next();
        } else if (arg == "--faults") {
            faults = next();
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (socket_config.socket_path.empty()) {
        usage(argv[0]);
        return 2;
    }

    try {
        fault::install_from_env();
        if (!faults.empty()) fault::install(fault::parse_fault_plan(faults));
    } catch (const std::exception& error) {
        std::fprintf(stderr, "glitchmaskd: bad fault plan: %s\n",
                     error.what());
        return 2;
    }

    // Observability opt-ins: a trace directory turns span collection on,
    // a metrics file turns telemetry collection on (both are otherwise
    // zero-cost-off, same as their env-var gates).
    if (!service_config.trace_dir.empty()) trace::set_enabled(true);
    if (!metrics_file.empty()) telemetry::set_enabled(true);

    CampaignService campaign_service(service_config);
    SocketServer server(socket_config);

    // Route job events back to the submitting connection.  A vanished
    // client is not a cancellation: the mapping goes stale, the job runs
    // on, and the result stays queryable (and cached) by a reconnect.
    std::mutex route_mutex;
    std::unordered_map<std::uint64_t, SocketServer::ClientId> job_client;

    campaign_service.set_progress_hook(
        [&](std::uint64_t job_id, const telemetry::ProgressUpdate& update) {
            SocketServer::ClientId client = 0;
            {
                std::lock_guard<std::mutex> lock(route_mutex);
                const auto it = job_client.find(job_id);
                if (it == job_client.end()) return;
                client = it->second;
            }
            (void)server.send(client, encode_progress(job_id, update),
                              /*droppable=*/true);
        });
    campaign_service.set_completion_hook([&](const JobStatus& status) {
        SocketServer::ClientId client = 0;
        {
            std::lock_guard<std::mutex> lock(route_mutex);
            const auto it = job_client.find(status.id);
            if (it == job_client.end()) return;
            client = it->second;
            job_client.erase(it);
        }
        (void)server.send(client, encode_result(status), /*droppable=*/false);
    });

    bool draining = false;
    server.set_line_handler([&](SocketServer::ClientId client,
                                const std::string& line) {
        ClientCommand command;
        try {
            command = parse_client_command(line);
        } catch (const std::exception& error) {
            (void)server.send(client, encode_rejected(error.what()),
                              /*droppable=*/false);
            return;
        }
        switch (command.op) {
            case ClientCommand::Op::Submit: {
                if (draining) {
                    (void)server.send(client, encode_rejected("draining"),
                                      false);
                    return;
                }
                const auto result = campaign_service.submit(*command.request);
                if (result.kind ==
                    CampaignService::SubmitResult::Kind::Overloaded) {
                    (void)server.send(client, encode_overloaded(), false);
                    return;
                }
                if (result.kind ==
                    CampaignService::SubmitResult::Kind::Draining) {
                    (void)server.send(client, encode_rejected("draining"),
                                      false);
                    return;
                }
                {
                    std::lock_guard<std::mutex> lock(route_mutex);
                    job_client[result.job_id] = client;
                }
                const auto status = campaign_service.status(result.job_id);
                // The request fingerprint is the job's identity from submit
                // time on (outcome.fingerprint only exists once a campaign
                // has run).
                (void)server.send(
                    client,
                    encode_accepted(result.job_id,
                                    status ? status->fingerprint_key
                                           : std::string()),
                    false);
                // A cache hit is terminal at submit time; its completion
                // hook ran before the mapping existed, so answer here.  A
                // fast real job can also be terminal already -- but then
                // the hook raced us and may have consumed the mapping and
                // sent the result itself, so only send if the mapping is
                // still ours to consume.
                if (status && job_state_terminal(status->state)) {
                    bool unclaimed = false;
                    {
                        std::lock_guard<std::mutex> lock(route_mutex);
                        unclaimed = job_client.erase(result.job_id) > 0;
                    }
                    if (unclaimed)
                        (void)server.send(client, encode_result(*status),
                                          false);
                }
                break;
            }
            case ClientCommand::Op::Status: {
                const auto status = campaign_service.status(command.job_id);
                if (!status) {
                    (void)server.send(client, encode_rejected("unknown job"),
                                      false);
                    return;
                }
                (void)server.send(client, encode_status(*status), false);
                break;
            }
            case ClientCommand::Op::Cancel: {
                const bool ok = campaign_service.cancel(command.job_id);
                (void)server.send(
                    client,
                    ok ? encode_status(*campaign_service.status(
                             command.job_id))
                       : encode_rejected("unknown or finished job"),
                    false);
                break;
            }
            case ClientCommand::Op::Stats:
                (void)server.send(client,
                                  encode_stats(campaign_service.stats()),
                                  false);
                break;
            case ClientCommand::Op::Metrics:
                (void)server.send(
                    client,
                    encode_metrics(telemetry::snapshot(),
                                   campaign_service.metrics_info()),
                    false);
                break;
            case ClientCommand::Op::History: {
                if (service_config.ledger_path.empty()) {
                    (void)server.send(client,
                                      encode_rejected("no ledger configured"),
                                      false);
                    return;
                }
                // Re-read per request: the ledger is append-only and the
                // reader skips torn tails, so a concurrent append is
                // harmless and the reply is always current.
                obs::LedgerFile ledger;
                try {
                    ledger = obs::read_ledger(service_config.ledger_path);
                } catch (const std::exception& error) {
                    (void)server.send(client, encode_rejected(error.what()),
                                      false);
                    return;
                }
                std::erase_if(ledger.entries,
                              [&](const obs::LedgerEntry& entry) {
                                  return obs::fingerprint_key(
                                             entry.fingerprint) !=
                                         command.fingerprint;
                              });
                obs::sort_ledger(ledger.entries);
                (void)server.send(
                    client,
                    encode_history(command.fingerprint, ledger.entries),
                    false);
                break;
            }
            case ClientCommand::Op::Shutdown:
                (void)server.send(client, encode_shutting_down(), false);
                if (command.drain) {
                    draining = true;  // finish the backlog, then exit
                } else {
                    server.stop();  // cancel + persist below
                }
                break;
        }
    });

    // SIGTERM/SIGINT: cooperative shutdown -- running jobs are cancelled
    // (they write final checkpoints), unfinished requests go to the state
    // file, and the exit is clean.
    CancelToken term;
    ScopedSignalCancel signal_binding(term);
    std::uint64_t last_metrics_refresh_ns = 0;
    server.set_tick_handler([&] {
        if (term.requested()) server.stop();
        if (draining) {
            const auto stats = campaign_service.stats();
            if (stats.queued_now == 0 && stats.running_now == 0)
                server.stop();
        }
        if (!metrics_file.empty()) {
            // Rate-limited: the tick fires every accept timeout, the file
            // only needs to be fresh on a scrape's timescale.
            const std::uint64_t now = telemetry::steady_now_ns();
            if (now - last_metrics_refresh_ns >= 2'000'000'000ull) {
                last_metrics_refresh_ns = now;
                refresh_metrics_file(metrics_file, campaign_service);
            }
        }
    });

    try {
        server.listen();
    } catch (const std::exception& error) {
        std::fprintf(stderr, "glitchmaskd: %s\n", error.what());
        return 1;
    }
    const std::size_t resumed = campaign_service.load_state();
    if (resumed > 0)
        log::info("glitchmaskd: resubmitted " + std::to_string(resumed) +
                  " request(s) from the state file");
    log::info("glitchmaskd: serving on " + socket_config.socket_path);

    server.run();
    campaign_service.shutdown(/*cancel_running=*/true);
    // Final exposition so post-mortem scrapes see the complete run.
    if (!metrics_file.empty())
        refresh_metrics_file(metrics_file, campaign_service);
    return 0;
}
