#include "support/runenv.hpp"

#include <ctime>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "support/env.hpp"

namespace glitchmask {

namespace {

/// First line of `path` with trailing whitespace removed; "" when the
/// file cannot be read.
std::string read_first_line(const std::string& path) {
    std::ifstream in(path);
    if (!in) return {};
    std::string line;
    std::getline(in, line);
    while (!line.empty() &&
           (line.back() == '\n' || line.back() == '\r' || line.back() == ' '))
        line.pop_back();
    return line;
}

bool is_hex40(const std::string& text) {
    if (text.size() != 40) return false;
    for (const char c : text)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
    return true;
}

/// Directory that holds the repository metadata: `<root>/.git` when that
/// is a directory, or the `gitdir:` target when it is a worktree file.
std::string resolve_git_dir(const std::string& root) {
    const std::string dotgit = root + "/.git";
    // A worktree checkout's .git is a one-line pointer file.
    const std::string pointer = read_first_line(dotgit);
    if (pointer.rfind("gitdir:", 0) == 0) {
        std::string target = pointer.substr(7);
        while (!target.empty() && target.front() == ' ')
            target.erase(target.begin());
        if (!target.empty() && target.front() != '/')
            target = root + "/" + target;
        return target;
    }
    // Plain repository: HEAD lives directly under .git.
    if (!read_first_line(dotgit + "/HEAD").empty()) return dotgit;
    return {};
}

std::string revision_from_git_dir(const std::string& git_dir) {
    const std::string head = read_first_line(git_dir + "/HEAD");
    if (is_hex40(head)) return head;  // detached HEAD
    if (head.rfind("ref: ", 0) != 0) return {};
    const std::string ref = head.substr(5);
    const std::string direct = read_first_line(git_dir + "/" + ref);
    if (is_hex40(direct)) return direct;
    // Ref packed away: scan packed-refs for "<hash> <ref>".
    std::ifstream packed(git_dir + "/packed-refs");
    std::string line;
    while (std::getline(packed, line)) {
        if (line.size() > 41 && line[40] == ' ' &&
            line.compare(41, std::string::npos, ref) == 0) {
            const std::string hash = line.substr(0, 40);
            if (is_hex40(hash)) return hash;
        }
    }
    return {};
}

}  // namespace

std::string git_revision() {
    const std::string pinned = env_string("GLITCHMASK_GIT_REVISION", "");
    if (!pinned.empty()) return pinned;
    // Walk up from the working directory; a bench run from build/bench
    // still finds the repository two levels up.
    std::string root = ".";
    for (int depth = 0; depth < 16; ++depth) {
        const std::string git_dir = resolve_git_dir(root);
        if (!git_dir.empty()) return revision_from_git_dir(git_dir);
        root += "/..";
    }
    return {};
}

std::string host_name() {
    const std::string pinned = env_string("GLITCHMASK_HOST", "");
    if (!pinned.empty()) return pinned;
    char buffer[256] = {};
    if (::gethostname(buffer, sizeof buffer - 1) != 0) return "unknown";
    return buffer[0] != '\0' ? std::string(buffer) : std::string("unknown");
}

std::string utc_timestamp() {
    const std::string pinned = env_string("GLITCHMASK_UTC", "");
    if (!pinned.empty()) return pinned;
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char buffer[32];
    std::strftime(buffer, sizeof buffer, "%Y-%m-%dT%H:%M:%SZ", &utc);
    return buffer;
}

}  // namespace glitchmask
