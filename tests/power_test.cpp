#include <gtest/gtest.h>

#include "core/gadgets.hpp"
#include "netlist/builder.hpp"
#include "power/power_model.hpp"
#include "sim/clocked.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace glitchmask::power {
namespace {

using netlist::NetId;
using netlist::Netlist;

TEST(PowerModel, DelayBufWeightScalesChainEnergy) {
    Netlist nl;
    const NetId a = nl.input("a");
    const netlist::DelayChain chain = netlist::delay_units(nl, a, 1, 10);
    (void)chain;
    nl.freeze();
    const sim::DelayModel dm(nl, sim::DelayConfig::deterministic());

    auto chain_energy = [&](double weight) {
        sim::EventSimulator sim(nl, dm);
        PowerConfig config;
        config.fanout_weight = 0.0;
        config.delaybuf_weight = weight;
        config.bin_ps = 1u << 20;
        PowerRecorder recorder(nl, config);
        recorder.begin_trace(1);
        sim.set_sink(&recorder);
        sim.drive(a, true, 0);
        sim.run_to_quiescence();
        return recorder.trace()[0];
    };
    // 1 input toggle (weight 1) + 10 DelayBuf toggles (weight w each).
    EXPECT_NEAR(chain_energy(1.0), 11.0, 1e-9);
    EXPECT_NEAR(chain_energy(0.1), 2.0, 1e-9);
}

TEST(PowerModel, CouplingEpsilonDependsOnNeighbourState) {
    // Two coupled delay stages; toggle one while the neighbour sits at
    // 0 vs 1: energies must differ by 2 * epsilon.
    auto energy_with_neighbour = [](bool neighbour_high) {
        Netlist nl;
        const NetId a = nl.input("a");
        const NetId b = nl.input("b");
        const NetId da = nl.delay_buf(a);
        const NetId db = nl.delay_buf(b);
        nl.couple(da, db);
        nl.freeze();
        const sim::DelayModel dm(nl, sim::DelayConfig::deterministic());
        sim::EventSimulator sim(nl, dm);
        PowerConfig config;
        config.fanout_weight = 0.0;
        config.delaybuf_weight = 1.0;
        config.coupling_epsilon = 0.25;
        config.bin_ps = 1u << 20;
        PowerRecorder recorder(nl, config);
        recorder.attach(&sim);
        if (neighbour_high) {
            sim.drive(b, true, 0);
            sim.run_to_quiescence();
        }
        recorder.begin_trace(1);
        sim.set_sink(&recorder);
        sim.drive(a, true, 50000);
        sim.run_to_quiescence();
        return recorder.trace()[0];
    };
    const double with_low = energy_with_neighbour(false);
    const double with_high = energy_with_neighbour(true);
    // Toggling `a` to 1 with neighbour at 0 costs +eps (opposite level),
    // with neighbour at 1 costs -eps.
    EXPECT_NEAR(with_low - with_high, 2 * 0.25, 1e-9);
}

TEST(PowerModel, TimingCouplingPushesOutOppositeTransitions) {
    // Two adjacent DelayBuf stages switching in opposite directions within
    // the window: with timing coupling the victim's commit is later.
    auto settle_time = [](bool coupling_on) {
        Netlist nl;
        const NetId a = nl.input("a");
        const NetId b = nl.input("b");
        const NetId da = nl.delay_buf(a);
        const NetId db = nl.delay_buf(b);
        nl.couple(da, db);
        nl.freeze();
        const sim::DelayModel dm(nl, sim::DelayConfig::deterministic());
        sim::CouplingConfig coupling;
        coupling.timing_enabled = coupling_on;
        coupling.window_ps = 2000;
        coupling.slowdown_ps = 500;
        sim::EventSimulator sim(nl, dm, coupling);
        // b starts high so its delay stage falls while a's rises.
        sim.drive(b, true, 0);
        sim.run_to_quiescence();
        sim.drive(a, true, 100000);   // aggressor rises, commits ~100650
        sim.drive(b, false, 100700);  // victim evaluates right after the
                                      // aggressor's opposite transition
        return sim.run_to_quiescence();
    };
    EXPECT_GT(settle_time(true), settle_time(false));
}

TEST(PowerModel, NoisyTraceIsSeedDeterministic) {
    Netlist nl;
    (void)nl.input("a");
    nl.freeze();
    PowerRecorder recorder(nl, PowerConfig{});
    recorder.begin_trace(8);
    Xoshiro256 rng_a(9);
    Xoshiro256 rng_b(9);
    EXPECT_EQ(recorder.noisy_trace(rng_a, 2.0), recorder.noisy_trace(rng_b, 2.0));
}

TEST(PowerModel, BinningSplitsByConfiguredPeriod) {
    Netlist nl;
    const NetId a = nl.input("a");
    (void)nl.inv(a);
    nl.freeze();
    const sim::DelayModel dm(nl, sim::DelayConfig::deterministic());
    sim::EventSimulator sim(nl, dm);
    PowerConfig config;
    config.bin_ps = 1000;
    PowerRecorder recorder(nl, config);
    recorder.begin_trace(4);
    sim.set_sink(&recorder);
    sim.drive(a, true, 100);    // bin 0
    sim.drive(a, false, 2500);  // bin 2 (+ inverter toggles nearby)
    sim.run_to_quiescence();
    EXPECT_GT(recorder.trace()[0], 0.0);
    EXPECT_GT(recorder.trace()[2], 0.0);
    EXPECT_EQ(recorder.trace()[1], 0.0);
}

}  // namespace
}  // namespace glitchmask::power
