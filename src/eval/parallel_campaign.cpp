#include "eval/parallel_campaign.hpp"

namespace glitchmask::eval {

unsigned resolve_workers(unsigned configured) {
    return configured > 0 ? configured : ThreadPool::default_worker_count();
}

}  // namespace glitchmask::eval
