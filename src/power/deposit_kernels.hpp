// Lane-mask deposit kernels behind runtime SIMD dispatch.
//
// BatchPowerRecorder::on_toggle is the single hottest non-simulator loop
// in a campaign (one call per committed toggle word, ~11M calls per 1024
// DES traces): walk the set bits of a 64-lane toggle mask, bump that
// lane's Hamming counter and add the net's energy weight to that lane's
// current-bin sample.  Each lane is an independent accumulator, so the
// walk vectorizes across lanes without touching any lane's FP operation
// order: the AVX2 form rewrites untouched lanes with their original bits
// (load/add/blend/store) and the AVX-512 form uses masked adds, so every
// dispatch level produces bit-identical samples (asserted with == in
// tests/batch_sim_test and tests/moment_bank_test).
//
// The vector TUs are compiled with their -m flag plus -ffp-contract=off;
// the kernels are pure adds, but the flag pins that down against future
// edits introducing a fusable multiply.
#pragma once

#include <cstdint>

namespace glitchmask::power::kernels {

/// row[lane] += weight and ++lane_toggles[lane] for every set lane.
using DepositFn = void (*)(double* row, std::uint64_t* lane_toggles,
                           std::uint64_t toggled, double weight);

/// row[lane] += weight + (opposite bit ? +eps : -eps), ++lane_toggles.
/// The weight+eps intermediate is one double add, as in the scalar path.
using DepositCoupledFn = void (*)(double* row, std::uint64_t* lane_toggles,
                                  std::uint64_t toggled,
                                  std::uint64_t opposite, double weight,
                                  double eps);

/// ++lane_toggles[lane] only (commit landed past the trace window).
using CountFn = void (*)(std::uint64_t* lane_toggles, std::uint64_t toggled);

struct DepositKernels {
    DepositFn deposit;
    DepositCoupledFn deposit_coupled;
    CountFn count;
};

void deposit_scalar(double* row, std::uint64_t* lane_toggles,
                    std::uint64_t toggled, double weight);
void deposit_coupled_scalar(double* row, std::uint64_t* lane_toggles,
                            std::uint64_t toggled, std::uint64_t opposite,
                            double weight, double eps);
void count_scalar(std::uint64_t* lane_toggles, std::uint64_t toggled);

#if defined(GLITCHMASK_HAVE_AVX2)
void deposit_avx2(double* row, std::uint64_t* lane_toggles,
                  std::uint64_t toggled, double weight);
void deposit_coupled_avx2(double* row, std::uint64_t* lane_toggles,
                          std::uint64_t toggled, std::uint64_t opposite,
                          double weight, double eps);
void count_avx2(std::uint64_t* lane_toggles, std::uint64_t toggled);
#endif
#if defined(GLITCHMASK_HAVE_AVX512)
void deposit_avx512(double* row, std::uint64_t* lane_toggles,
                    std::uint64_t toggled, double weight);
void deposit_coupled_avx512(double* row, std::uint64_t* lane_toggles,
                            std::uint64_t toggled, std::uint64_t opposite,
                            double weight, double eps);
void count_avx512(std::uint64_t* lane_toggles, std::uint64_t toggled);
#endif

/// Kernel set for support::active_simd_level(); never null pointers.
[[nodiscard]] DepositKernels resolve_deposit_kernels() noexcept;

}  // namespace glitchmask::power::kernels
