#include "core/composition.hpp"

#include <stdexcept>
#include <string>

namespace glitchmask::core {

FfProduct product_tree_ff(Netlist& nl, std::span<const SharedNet> vars,
                          CtrlGroup first_group, CtrlGroup reset) {
    if (vars.empty())
        throw std::invalid_argument("product_tree_ff: no variables");
    FfProduct result;
    result.first_group = first_group;

    std::vector<SharedNet> level(vars.begin(), vars.end());
    unsigned layer = 0;
    while (level.size() > 1) {
        std::vector<SharedNet> next;
        next.reserve((level.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
            const std::string name = "l" + std::to_string(layer) + "_g" +
                                     std::to_string(i / 2);
            next.push_back(secand2_ff(nl, level[i], level[i + 1],
                                      static_cast<CtrlGroup>(first_group + layer),
                                      reset, name));
        }
        // An odd leftover rides through unregistered: its operand registers
        // hold it stable, and it always enters the next layer as the x
        // operand's partner via the pairing order below.
        if (level.size() % 2 != 0) next.push_back(level.back());
        level = std::move(next);
        ++layer;
    }
    result.out = level.front();
    result.layers = layer;
    return result;
}

DelaySchedule table2_schedule(unsigned n) {
    if (n == 0) throw std::invalid_argument("table2_schedule: n == 0");
    DelaySchedule schedule;
    schedule.share0.resize(n);
    schedule.share1.resize(n);
    for (unsigned i = 0; i < n; ++i) {
        schedule.share0[i] = n - 1 - i;
        schedule.share1[i] = n - 1 + i;
    }
    return schedule;
}

DelayedShared delay_shared(Netlist& nl, SharedNet a, unsigned units0,
                           unsigned units1, unsigned luts_per_unit,
                           std::string_view name) {
    DelayedShared result;
    const std::string base(name);
    result.chain0 = netlist::delay_units(nl, a.s0, units0, luts_per_unit,
                                         base.empty() ? base : base + "_s0");
    result.chain1 = netlist::delay_units(nl, a.s1, units1, luts_per_unit,
                                         base.empty() ? base : base + "_s1");
    result.out = SharedNet{result.chain0.out, result.chain1.out};
    return result;
}

PdProduct product_chain_pd(Netlist& nl, std::span<const SharedNet> vars,
                           const PathDelayOptions& options) {
    if (vars.empty())
        throw std::invalid_argument("product_chain_pd: no variables");
    const unsigned n = static_cast<unsigned>(vars.size());
    const DelaySchedule schedule = table2_schedule(n);

    std::vector<DelayedShared> delayed(n);
    for (unsigned i = 0; i < n; ++i)
        delayed[i] = delay_shared(nl, vars[i], schedule.share0[i],
                                  schedule.share1[i], options.luts_per_unit,
                                  "v" + std::to_string(i));

    if (options.couple_adjacent) {
        // Chains are stacked in creation order; couple each chain with the
        // next non-empty one (paper Fig. 11: DelayUnits sit side by side).
        std::vector<const netlist::DelayChain*> chains;
        for (const DelayedShared& d : delayed) {
            if (!d.chain0.stages.empty()) chains.push_back(&d.chain0);
            if (!d.chain1.stages.empty()) chains.push_back(&d.chain1);
        }
        for (std::size_t i = 0; i + 1 < chains.size(); ++i)
            netlist::couple_chains(nl, *chains[i], *chains[i + 1]);
    }

    PdProduct result;
    result.max_delay_units = 2 * (n - 1);
    SharedNet acc = delayed[0].out;
    for (unsigned i = 1; i < n; ++i)
        acc = secand2(nl, acc, delayed[i].out, "chain_g" + std::to_string(i));
    result.out = acc;
    return result;
}

}  // namespace glitchmask::core
