// Fixed-vs-random TVLA campaigns over multi-sample traces.
//
// A campaign holds one UnivariateTTest per trace sample point and is fed
// complete traces labelled fixed/random (the caller interleaves the
// classes randomly, as the methodology requires).  Queries return the
// per-sample t curves the paper plots (Figs. 14, 15, 17) and the summary
// statistics the benches print.  The paper's decision rule -- a design is
// leaky only when the threshold is exceeded *consistently at the same
// time indexes across different fixed plaintexts* -- is implemented by
// consistent_exceedances().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "leakage/ttest.hpp"

namespace glitchmask::leakage {

class TvlaCampaign {
public:
    TvlaCampaign(std::size_t samples, int max_test_order = 3);

    /// Adds one complete trace; `trace.size()` may exceed the campaign
    /// width (extra samples ignored) but not undercut it.
    void add_trace(bool fixed_class, std::span<const double> trace);

    /// Adds up to 64 traces held bin-major (`bin_major[bin * stride +
    /// lane]`) in one call -- the layout the bitsliced batch recorder
    /// produces.  Lane l is one trace, bit l of `fixed_mask` labels its
    /// class, lanes >= `count` are ignored (partial final group of a
    /// campaign).  Every per-point accumulator receives exactly the
    /// samples `count` add_trace() calls in lane order would feed it, in
    /// the same order, so the result is bit-identical to the scalar path.
    void add_lane_traces(std::span<const double> bin_major, std::size_t stride,
                         std::uint64_t fixed_mask, unsigned count);

    [[nodiscard]] std::size_t samples() const noexcept { return points_.size(); }
    [[nodiscard]] std::size_t traces(bool fixed_class) const;

    /// t curve at the given order (one value per sample point).
    [[nodiscard]] std::vector<double> t_curve(int order) const;

    /// max |t| over all samples; optionally reports the argmax index.
    [[nodiscard]] double max_abs_t(int order,
                                   std::size_t* argmax = nullptr) const;

    /// Sample indices where |t| exceeds the threshold.
    [[nodiscard]] std::vector<std::size_t> exceedances(
        int order, double threshold = kTvlaThreshold) const;

    void merge(const TvlaCampaign& other);

    /// Exact binary serialization of every per-sample accumulator: a
    /// decoded campaign merges and queries bit-identically to the
    /// original (the crash-safe runtime's resume contract).
    void encode(SnapshotWriter& out) const;
    [[nodiscard]] static TvlaCampaign decode(SnapshotReader& in);

    [[nodiscard]] const UnivariateTTest& point(std::size_t i) const {
        return points_[i];
    }

private:
    std::vector<UnivariateTTest> points_;
};

/// Paper decision rule: indices where *every* campaign exceeds the
/// threshold at the same sample (same order).  An implementation is
/// deemed first-order leaky only when this set is non-empty.
[[nodiscard]] std::vector<std::size_t> consistent_exceedances(
    std::span<const TvlaCampaign> campaigns, int order,
    double threshold = kTvlaThreshold);

}  // namespace glitchmask::leakage
