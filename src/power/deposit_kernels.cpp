#include "power/deposit_kernels.hpp"

#include <bit>

#include "support/simd.hpp"

namespace glitchmask::power::kernels {

void deposit_scalar(double* row, std::uint64_t* lane_toggles,
                    std::uint64_t toggled, double weight) {
    for (std::uint64_t rest = toggled; rest != 0; rest &= rest - 1) {
        const unsigned lane = static_cast<unsigned>(std::countr_zero(rest));
        ++lane_toggles[lane];
        row[lane] += weight;
    }
}

void deposit_coupled_scalar(double* row, std::uint64_t* lane_toggles,
                            std::uint64_t toggled, std::uint64_t opposite,
                            double weight, double eps) {
    for (std::uint64_t rest = toggled; rest != 0; rest &= rest - 1) {
        const unsigned lane = static_cast<unsigned>(std::countr_zero(rest));
        ++lane_toggles[lane];
        row[lane] += weight + (((opposite >> lane) & 1u) != 0 ? eps : -eps);
    }
}

void count_scalar(std::uint64_t* lane_toggles, std::uint64_t toggled) {
    for (std::uint64_t rest = toggled; rest != 0; rest &= rest - 1)
        ++lane_toggles[std::countr_zero(rest)];
}

DepositKernels resolve_deposit_kernels() noexcept {
    const support::SimdLevel level = support::active_simd_level();
#if defined(GLITCHMASK_HAVE_AVX512)
    if (level >= support::SimdLevel::kAvx512)
        return {deposit_avx512, deposit_coupled_avx512, count_avx512};
#endif
#if defined(GLITCHMASK_HAVE_AVX2)
    if (level >= support::SimdLevel::kAvx2)
        return {deposit_avx2, deposit_coupled_avx2, count_avx2};
#endif
    (void)level;
    return {deposit_scalar, deposit_coupled_scalar, count_scalar};
}

}  // namespace glitchmask::power::kernels
