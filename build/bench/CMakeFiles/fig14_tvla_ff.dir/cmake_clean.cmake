file(REMOVE_RECURSE
  "CMakeFiles/fig14_tvla_ff.dir/fig14_tvla_ff.cpp.o"
  "CMakeFiles/fig14_tvla_ff.dir/fig14_tvla_ff.cpp.o.d"
  "fig14_tvla_ff"
  "fig14_tvla_ff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_tvla_ff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
