// Leakage lab: the paper's core experiment at gadget scale.
//
// Three ways to run the same masked AND, identical TVLA campaign each:
//   1. "naive"      -- all four shares arrive at the same clock edge; the
//                      per-instance routing jitter decides the order, so
//                      some instances see an x share last and leak (this
//                      is the paper's "programming Eq. 2 directly into
//                      LUTs leaks" observation, Sec. II-A);
//   2. secAND2-FF   -- the internal flip-flop forces y1 to arrive a cycle
//                      late: no first-order leakage;
//   3. secAND2-PD   -- 10-LUT DelayUnits enforce the arrival order inside
//                      a single cycle: no first-order leakage.
// All three show second-order leakage -- unavoidable for 2 shares.
//
// Flags: --progress[=seconds] for a stderr heartbeat across the three
// campaigns, --report <path> for a JSON run report with the simulator
// counters and the per-style |t| peaks.
#include <cstdio>
#include <string>

#include "core/gadgets.hpp"
#include "core/sharing.hpp"
#include "eval/run_report.hpp"
#include "leakage/tvla.hpp"
#include "power/power_model.hpp"
#include "sim/clocked.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/telemetry.hpp"

using namespace glitchmask;

namespace {

enum class Style { Naive, Ff, Pd };

struct Lab {
    core::Netlist nl;
    core::SharedNet x_in{}, y_in{};
    Style style;
};

Lab build(Style style, unsigned replicas) {
    Lab lab;
    lab.style = style;
    lab.x_in = core::shared_input(lab.nl, "x");
    lab.y_in = core::shared_input(lab.nl, "y");
    const core::SharedNet x = core::reg_shares(lab.nl, lab.x_in, 1);
    const core::SharedNet y = core::reg_shares(lab.nl, lab.y_in, 1);
    for (unsigned k = 0; k < replicas; ++k) {
        const std::string name = "g" + std::to_string(k);
        switch (style) {
            case Style::Naive:
                (void)core::secand2(lab.nl, x, y, name);
                break;
            case Style::Ff:
                (void)core::secand2_ff(lab.nl, x, y, /*enable=*/2,
                                       /*reset=*/3, name);
                break;
            case Style::Pd:
                (void)core::secand2_pd(lab.nl, x, y,
                                       core::PathDelayOptions{10, true}, name);
                break;
        }
    }
    lab.nl.freeze();
    return lab;
}

struct LabResult {
    double t1 = 0.0;
    double t2 = 0.0;
};

LabResult run(Style style, std::size_t traces,
              telemetry::ProgressMeter* meter) {
    Lab lab = build(style, 16);
    const sim::DelayModel dm(lab.nl, sim::DelayConfig::spartan6());
    sim::ClockConfig clock;
    clock.period_ps = 90000;  // room for the PD chains
    sim::ClockedSim sim(lab.nl, dm, clock);
    power::PowerRecorder recorder(lab.nl, power::PowerConfig{
                                              .bin_ps = clock.period_ps});
    sim.engine().set_sink(&recorder);

    constexpr std::size_t kCycles = 4;
    leakage::TvlaCampaign campaign(kCycles, 2);
    Xoshiro256 rng(77);
    Xoshiro256 noise(78);
    for (std::size_t t = 0; t < traces; ++t) {
        const bool fixed = rng.bit();
        const bool xv = fixed ? true : rng.bit();
        const bool yv = fixed ? true : rng.bit();
        const core::MaskedBit mx = core::mask_bit(xv, rng);
        const core::MaskedBit my = core::mask_bit(yv, rng);
        sim.restart();
        recorder.begin_trace(kCycles);
        sim.set_input(lab.x_in.s0, mx.s0);
        sim.set_input(lab.x_in.s1, mx.s1);
        sim.set_input(lab.y_in.s0, my.s0);
        sim.set_input(lab.y_in.s1, my.s1);
        sim.step();
        sim.set_enable(1, true);
        sim.step();  // all shares land together (the naive hazard)
        if (style == Style::Ff) {
            sim.set_enable(2, true);
            sim.step();  // y1 follows one cycle later
        } else {
            sim.step();
        }
        campaign.add_trace(fixed, recorder.noisy_trace(noise, 0.5));
        if (meter != nullptr) meter->advance(1);
    }
    if (telemetry::enabled()) {
        telemetry::SimStats last;
        telemetry::record_sim_block(sim.engine().stats(), last);
    }
    return LabResult{campaign.max_abs_t(1), campaign.max_abs_t(2)};
}

}  // namespace

int main(int argc, char** argv) {
    const CliOptions cli = parse_cli(argc, argv);
    std::printf("Leakage lab: one masked AND, three hardware disciplines\n");
    std::printf("(16 parallel instances, 12000 traces each)\n\n");
    TablePrinter table(
        {"gadget", "arrival discipline", "max|t1|", "max|t2|", "1st order"});
    const std::size_t traces = 12000;

    eval::CampaignRunOptions run_options;
    run_options.report_path = cli.report_path;
    std::uint64_t payload = eval::kFnvOffset;
    payload = eval::fnv1a64(payload, /*replicas=*/16);
    payload = eval::fnv1a64(payload, /*styles=*/3);
    const eval::CampaignFingerprint fingerprint{
        eval::fnv1a64_tag("leakage_lab"), /*seed=*/77, 3 * traces, traces,
        payload};
    eval::RunTelemetrySession session("leakage_lab", run_options, fingerprint,
                                      3 * traces, /*workers=*/1, /*lanes=*/1);

    const LabResult naive = run(Style::Naive, traces, session.meter());
    const LabResult ff = run(Style::Ff, traces, session.meter());
    const LabResult pd = run(Style::Pd, traces, session.meter());
    table.add_row({"secAND2 (naive)", "all shares same edge",
                   TablePrinter::num(naive.t1), TablePrinter::num(naive.t2),
                   naive.t1 > 4.5 ? "LEAKS" : "no leak"});
    table.add_row({"secAND2-FF", "y1 delayed by internal FF",
                   TablePrinter::num(ff.t1), TablePrinter::num(ff.t2),
                   ff.t1 > 4.5 ? "LEAKS" : "no leak"});
    table.add_row({"secAND2-PD", "y0 -> x0,x1 -> y1 via DelayUnits",
                   TablePrinter::num(pd.t1), TablePrinter::num(pd.t2),
                   pd.t1 > 4.5 ? "LEAKS" : "no leak"});
    table.print();
    std::printf(
        "\nExpected: the naive mapping leaks at first order; both of the\n"
        "paper's gadgets do not; all three leak at second order (2 shares\n"
        "processed in parallel).\n");
    const bool ok = naive.t1 > 4.5 && ff.t1 < 4.5 && pd.t1 < 4.5;

    session.add_metric("naive_max_abs_t1", naive.t1);
    session.add_metric("naive_max_abs_t2", naive.t2);
    session.add_metric("ff_max_abs_t1", ff.t1);
    session.add_metric("ff_max_abs_t2", ff.t2);
    session.add_metric("pd_max_abs_t1", pd.t1);
    session.add_metric("pd_max_abs_t2", pd.t2);
    eval::CampaignProgress progress;
    progress.completed_blocks = 3;
    progress.completed_traces = 3 * traces;
    session.finish(progress);
    if (session.writes_report())
        std::printf("Run report: %s\n", session.report_path().c_str());
    return ok ? 0 : 1;
}
