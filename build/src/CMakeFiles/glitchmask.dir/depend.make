# Empty dependencies file for glitchmask.
# This may be replaced when dependencies are built.
