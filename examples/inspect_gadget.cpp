// Inspect a gadget like an EDA tool would: structural Verilog export,
// Graphviz schematic, static timing, value-domain probing analysis, and a
// VCD waveform of one glitchy evaluation.
//
// Writes secand2_pd.v / secand2_pd.dot / secand2_pd.vcd next to the
// binary; the printed report summarizes what each view shows.
#include <cstdio>
#include <fstream>

#include "core/gadgets.hpp"
#include "core/sharing.hpp"
#include "leakage/probing.hpp"
#include "netlist/area.hpp"
#include "netlist/export.hpp"
#include "netlist/lutmap.hpp"
#include "sim/clocked.hpp"
#include "sim/vcd.hpp"

using namespace glitchmask;

int main() {
    std::printf("Inspecting secAND2-PD (10-LUT DelayUnits)\n\n");

    core::Netlist nl;
    const core::SharedNet x_in = core::shared_input(nl, "x");
    const core::SharedNet y_in = core::shared_input(nl, "y");
    const core::SharedNet x = core::reg_shares(nl, x_in, /*enable=*/1, 0, "rx");
    const core::SharedNet y = core::reg_shares(nl, y_in, /*enable=*/1, 0, "ry");
    const core::SharedNet z =
        core::secand2_pd(nl, x, y, core::PathDelayOptions{10, true});
    nl.freeze();

    // Structure and cost.
    const auto luts = netlist::estimate_luts(nl);
    std::printf("cells: %zu   LUT estimate: %zu (of which %zu delay)   FFs: %zu\n",
                nl.size(), luts.luts, luts.delay_luts, luts.ffs);
    std::printf("GE (delay chains as 12 INV per LUT): %.1f\n",
                netlist::total_ge(
                    nl, netlist::AreaModel::nangate45_with_delay_inverters(12)));

    // Timing: the y1 chain dominates.
    const sim::DelayModel dm(nl, sim::DelayConfig::spartan6());
    const sim::CriticalPath critical = sim::analyze_timing(nl, dm);
    std::printf("critical path: %.1f ns  -> max %.0f MHz\n",
                critical.delay_ps / 1000.0, critical.max_freq_mhz);

    // Value-domain probing: every wire independent, output sharing uniform.
    leakage::ProbingAnalyzer probing(nl, {x_in, y_in}, {});
    std::printf("probing (exhaustive): %s; output sharing uniformity bias %.3f\n",
                probing.first_order_secure()
                    ? "every wire first-order independent"
                    : "FIRST-ORDER VIOLATION",
                probing.sharing_uniformity_bias(z));

    // Exports.
    netlist::write_verilog(nl, "secand2_pd.v", "secand2_pd");
    {
        std::ofstream dot("secand2_pd.dot");
        dot << netlist::to_dot(nl);
    }
    std::printf("wrote secand2_pd.v and secand2_pd.dot\n");

    // One glitchy evaluation, dumped as a waveform.
    sim::ClockConfig clock;
    clock.period_ps = 90000;
    sim::ClockedSim sim(nl, dm, clock);
    sim::VcdWriter vcd(nl, "secand2_pd.vcd",
                       {x.s0, x.s1, y.s0, y.s1, z.s0, z.s1});
    vcd.dump_initial(sim.engine());
    sim.engine().set_sink(&vcd);
    Xoshiro256 rng(3);
    const core::MaskedBit mx = core::mask_bit(true, rng);
    const core::MaskedBit my = core::mask_bit(true, rng);
    sim.set_input(x_in.s0, mx.s0);
    sim.set_input(x_in.s1, mx.s1);
    sim.set_input(y_in.s0, my.s0);
    sim.set_input(y_in.s1, my.s1);
    sim.step();
    sim.set_enable(1, true);
    sim.step(2);
    const core::MaskedBit mz{sim.value(z.s0), sim.value(z.s1)};
    std::printf("evaluated 1&1 -> %d (shares %d,%d); waveform in secand2_pd.vcd\n",
                mz.value(), mz.s0, mz.s1);
    std::printf(
        "\nOpen the VCD in GTKWave to see the DelayUnit arrival staircase:\n"
        "y0 first, then x0/x1 one DelayUnit later, y1 two DelayUnits later.\n");
    return mz.value() == 1 ? 0 : 1;
}
