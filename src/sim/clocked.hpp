// Cycle-level testbench driver around the event simulator.
//
// ClockedSim owns the clock: at every rising edge it samples the D pins
// of enabled flip-flops (as visible through the wire delays -- a signal
// arriving "too late" genuinely misses the edge), applies pending primary
// input changes, launches the new Q values with clock-to-Q delay, and then
// lets the combinational network settle event by event until the next
// edge.  Flip-flop enable and reset lines are grouped; the per-design
// control FSMs (e.g. the secAND2-FF sampling schedule of paper Sec. III-A)
// toggle whole groups per cycle from C++.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/builder.hpp"
#include "netlist/netlist.hpp"
#include "sim/delay_model.hpp"
#include "sim/simulator.hpp"

namespace glitchmask::sim {

using netlist::Bus;
using netlist::CtrlGroup;

struct ClockConfig {
    TimePs period_ps = 20000;
};

class ClockedSim {
public:
    ClockedSim(const Netlist& nl, const DelayModel& dm, ClockConfig clock = {},
               CouplingConfig coupling = {}, SimOptions options = {});

    /// Enables/disables a flop group for subsequent edges.  Group 0 is
    /// always enabled; non-zero groups start *disabled*.
    void set_enable(CtrlGroup group, bool enabled);

    /// Asserts/deasserts synchronous reset (to 0) for a flop group.
    void set_reset(CtrlGroup group, bool asserted);

    /// Schedules a primary-input change; it takes effect right after the
    /// next clock edge (like the output of an external register).
    void set_input(NetId input, bool value);
    void set_input_bus(const Bus& bus, std::uint64_t value);

    /// Advances `cycles` rising edges.
    void step(std::size_t cycles = 1);

    [[nodiscard]] bool value(NetId net) const { return engine_.value(net); }
    [[nodiscard]] std::uint64_t read_bus(const Bus& bus) const;

    [[nodiscard]] std::size_t cycle() const noexcept { return cycle_; }
    [[nodiscard]] TimePs period() const noexcept { return clock_.period_ps; }
    [[nodiscard]] EventSimulator& engine() noexcept { return engine_; }
    [[nodiscard]] const EventSimulator& engine() const noexcept { return engine_; }

    /// Back to the all-zero reset state at cycle 0 (keeps the configured
    /// sink, enables and resets return to defaults, pending inputs drop).
    void restart();

private:
    const Netlist& nl_;
    const DelayModel& dm_;
    ClockConfig clock_;
    EventSimulator engine_;
    std::vector<std::uint8_t> enable_;
    std::vector<std::uint8_t> reset_;
    struct PendingInput {
        NetId net;
        bool value;
    };
    std::vector<PendingInput> pending_;
    std::size_t cycle_ = 0;
};

}  // namespace glitchmask::sim
