// Span-tracing tests: the recorder's parenting/buffering semantics, the
// Chrome-trace export, the run-report v3 sections and -- the load-bearing
// property -- that turning tracing on never perturbs a campaign result
// bit.  Tracing shares telemetry's zero-cost-off contract: a disabled
// ScopedSpan reads no clock and allocates no id, so the default
// configuration pays nothing for the instrumentation sprinkled through
// the runners and the service.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/circuits.hpp"
#include "eval/campaign.hpp"
#include "eval/run_report.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

using namespace glitchmask;

namespace {

std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "glitchmask_" + name;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

const trace::Span* find_span(const std::vector<trace::Span>& spans,
                             const std::string& name) {
    for (const trace::Span& span : spans)
        if (span.name == name) return &span;
    return nullptr;
}

eval::SequenceExperimentConfig small_config(unsigned workers) {
    eval::SequenceExperimentConfig config;
    config.replicas = 4;
    config.traces = 96;
    config.block_size = 16;
    config.seed = 5;
    config.max_test_order = 2;
    config.workers = workers;
    config.lanes = 64;
    return config;
}

// ----- recorder ----------------------------------------------------------

TEST(TraceRecorder, DisabledRecorderIsInert) {
    trace::set_enabled(false);
    trace::reset();
    {
        const trace::ScopedSpan span("noop");
        EXPECT_EQ(span.id(), 0u);           // no id allocated when off
        EXPECT_EQ(trace::current_span(), 0u);  // and no ambient join
    }
    trace::record_span(trace::new_span_id(), "manual", 0, 10, 20);
    EXPECT_TRUE(trace::take_spans().empty());
    EXPECT_EQ(trace::dropped_spans(), 0u);
}

TEST(TraceRecorder, ScopedSpansNestUnderTheAmbientStack) {
    const trace::ScopedTraceEnable scoped;
    trace::reset();
    trace::SpanId outer_id = 0;
    trace::SpanId inner_id = 0;
    {
        const trace::ScopedSpan outer("outer");
        outer_id = outer.id();
        ASSERT_NE(outer_id, 0u);
        EXPECT_EQ(trace::current_span(), outer_id);
        {
            const trace::ScopedSpan inner("inner", 0, {{"key", "value"}});
            inner_id = inner.id();
            EXPECT_NE(inner_id, outer_id);
            EXPECT_EQ(trace::current_span(), inner_id);
        }
        EXPECT_EQ(trace::current_span(), outer_id);
    }
    EXPECT_EQ(trace::current_span(), 0u);

    const std::vector<trace::Span> spans = trace::take_spans();
    ASSERT_EQ(spans.size(), 2u);
    const trace::Span* outer = find_span(spans, "outer");
    const trace::Span* inner = find_span(spans, "inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->id, outer_id);
    EXPECT_EQ(outer->parent, 0u);           // root: no ambient above it
    EXPECT_EQ(inner->parent, outer_id);     // defaulted from the ambient
    ASSERT_EQ(inner->attrs.size(), 1u);
    EXPECT_EQ(inner->attrs[0].first, "key");
    EXPECT_EQ(inner->attrs[0].second, "value");
    EXPECT_GE(outer->end_ns, outer->begin_ns);
    EXPECT_LE(outer->begin_ns, inner->begin_ns);

    // take_spans drained the buffers; a second drain is empty.
    EXPECT_TRUE(trace::take_spans().empty());
    trace::reset();
}

TEST(TraceRecorder, ExplicitParentOverridesTheAmbientSpan) {
    const trace::ScopedTraceEnable scoped;
    trace::reset();
    const trace::SpanId external = trace::new_span_id();
    {
        const trace::ScopedSpan ambient("ambient");
        const trace::ScopedSpan child("child", external);
        EXPECT_NE(child.id(), 0u);
    }
    const std::vector<trace::Span> spans = trace::take_spans();
    const trace::Span* child = find_span(spans, "child");
    ASSERT_NE(child, nullptr);
    EXPECT_EQ(child->parent, external);
    trace::reset();
}

TEST(TraceRecorder, ExplicitIdsStitchSpansAcrossExitedThreads) {
    const trace::ScopedTraceEnable scoped;
    trace::reset();
    // A service job's shape: the root id is allocated on one thread, the
    // work happens (and records) on another that exits before the drain,
    // and the root span itself is recorded retrospectively at the end.
    const trace::SpanId root = trace::new_span_id();
    std::thread worker([&] {
        trace::push_ambient(root);
        { const trace::ScopedSpan leaf("leaf"); }
        trace::pop_ambient();
    });
    worker.join();  // worker's buffer must survive the thread
    trace::record_span(root, "root", 0, 5, 50,
                       {{"job", "1"}});
    const std::vector<trace::Span> spans = trace::take_spans();
    ASSERT_EQ(spans.size(), 2u);
    const trace::Span* leaf = find_span(spans, "leaf");
    const trace::Span* recorded = find_span(spans, "root");
    ASSERT_NE(leaf, nullptr);
    ASSERT_NE(recorded, nullptr);
    EXPECT_EQ(leaf->parent, root);
    EXPECT_EQ(recorded->id, root);
    EXPECT_EQ(recorded->begin_ns, 5u);
    EXPECT_EQ(recorded->end_ns, 50u);
    trace::reset();
}

TEST(TraceRecorder, SummarizeAggregatesByNameSorted) {
    std::vector<trace::Span> spans(4);
    spans[0].name = "block";
    spans[0].begin_ns = 100;
    spans[0].end_ns = 400;
    spans[1].name = "sim";
    spans[1].begin_ns = 100;
    spans[1].end_ns = 150;
    spans[2].name = "block";
    spans[2].begin_ns = 400;
    spans[2].end_ns = 1000;
    spans[3].name = "execute";
    spans[3].begin_ns = 0;
    spans[3].end_ns = 2000;
    const std::vector<trace::SpanSummary> summary =
        trace::summarize_spans(spans);
    const std::vector<trace::SpanSummary> expected = {
        {"block", 2, 900}, {"execute", 1, 2000}, {"sim", 1, 50}};
    EXPECT_EQ(summary, expected);
    EXPECT_TRUE(trace::summarize_spans({}).empty());
}

// ----- Chrome-trace export -----------------------------------------------

TEST(ChromeTrace, RenderedJsonIsWellFormed) {
    std::vector<trace::Span> spans(2);
    spans[0].id = 7;
    spans[0].name = "execute \"q\"\n";  // must survive JSON escaping
    spans[0].begin_ns = 1500;
    spans[0].end_ns = 4500;
    spans[0].thread = 2;
    spans[0].attrs = {{"job", "9"}};
    spans[1].id = 8;
    spans[1].parent = 7;
    spans[1].name = "block";
    spans[1].begin_ns = 2000;
    spans[1].end_ns = 2100;

    const eval::JsonValue doc =
        eval::parse_json(trace::render_chrome_trace(spans));
    const eval::JsonValue* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->array.size(), 2u);
    for (const eval::JsonValue& event : events->array) {
        ASSERT_NE(event.find("ph"), nullptr);
        EXPECT_EQ(event.find("ph")->string, "X");  // complete events
        EXPECT_NE(event.find("name"), nullptr);
        EXPECT_NE(event.find("ts"), nullptr);
        EXPECT_NE(event.find("dur"), nullptr);
        EXPECT_NE(event.find("pid"), nullptr);
        EXPECT_NE(event.find("tid"), nullptr);
        ASSERT_NE(event.find("args"), nullptr);
    }
    const eval::JsonValue& exec = events->array[0];
    EXPECT_EQ(exec.find("name")->string, "execute \"q\"\n");
    EXPECT_DOUBLE_EQ(exec.find("ts")->as_number(), 1.5);    // 1500 ns in us
    EXPECT_DOUBLE_EQ(exec.find("dur")->as_number(), 3.0);   // 3000 ns
    EXPECT_EQ(exec.find("args")->find("job")->string, "9");
    const eval::JsonValue& block = events->array[1];
    EXPECT_EQ(block.find("args")->find("parent")->string, "7");
    EXPECT_EQ(block.find("args")->find("id")->string, "8");
}

TEST(ChromeTrace, ThreadIndexBecomesTheTid) {
    std::vector<trace::Span> spans(2);
    spans[0].id = 1;
    spans[0].name = "a";
    spans[0].thread = 2;
    spans[1].id = 2;
    spans[1].name = "b";
    spans[1].thread = 0;
    const eval::JsonValue doc =
        eval::parse_json(trace::render_chrome_trace(spans));
    const auto& events = doc.find("traceEvents")->array;
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].find("tid")->unsigned_value, 2u);
    EXPECT_EQ(events[1].find("tid")->unsigned_value, 0u);
}

TEST(ChromeTrace, WriteExportsALoadableFile) {
    std::vector<trace::Span> spans(1);
    spans[0].id = 1;
    spans[0].name = "job";
    spans[0].end_ns = 1000;
    const std::string path = temp_path("export.trace.json");
    trace::write_chrome_trace(path, spans);
    const std::string text = read_file(path);
    std::remove(path.c_str());
    ASSERT_FALSE(text.empty());
    const eval::JsonValue doc = eval::parse_json(text);
    ASSERT_NE(doc.find("traceEvents"), nullptr);
    ASSERT_EQ(doc.find("traceEvents")->array.size(), 1u);
    EXPECT_EQ(doc.find("traceEvents")->array[0].find("name")->string, "job");
}

// ----- campaigns under tracing -------------------------------------------

TEST(TraceCampaign, EnablingTracingIsBitIdentical) {
    trace::set_enabled(false);
    trace::reset();
    const eval::SequenceLeakResult off = eval::run_sequence_experiment(
        core::all_input_sequences().front(), small_config(2));

    eval::SequenceLeakResult on;
    std::vector<trace::Span> spans;
    {
        const trace::ScopedTraceEnable scoped;
        trace::reset();
        on = eval::run_sequence_experiment(
            core::all_input_sequences().front(), small_config(2));
        spans = trace::take_spans();
    }
    trace::reset();

    // Recording is measurement-only: the statistics agree bit for bit.
    EXPECT_EQ(off.max_abs_t1, on.max_abs_t1);
    EXPECT_EQ(off.max_abs_t2, on.max_abs_t2);
    EXPECT_EQ(off.argmax_cycle, on.argmax_cycle);

    // And the traced run actually produced the block/phase tree: one
    // "block" span per shard block, with the phase leaves nested under
    // block spans (cross-thread parenting via the ambient stack).
    std::size_t blocks = 0;
    for (const trace::Span& span : spans)
        if (span.name == "block") ++blocks;
    EXPECT_EQ(blocks, 6u);  // 96 traces / block_size 16
    const trace::Span* sim = find_span(spans, "sim");
    ASSERT_NE(sim, nullptr);
    const trace::Span* parent = nullptr;
    for (const trace::Span& span : spans)
        if (span.id == sim->parent) parent = &span;
    ASSERT_NE(parent, nullptr);
    EXPECT_EQ(parent->name, "block");
}

// ----- run-report v3 ------------------------------------------------------

TEST(RunReportV3, RoundTripKeepsHistogramsAndSpans) {
    eval::RunReport report;
    report.campaign = "v3_round_trip";
    report.fingerprint = {1, 2, 3, 4, 5};
    report.workers = 2;
    report.lanes = 64;
    report.telemetry_enabled = true;

    auto& execute = report.counters.histograms[static_cast<std::size_t>(
        telemetry::Histogram::kExecuteNanos)];
    execute.buckets[telemetry::histogram_bucket(123456)] = 3;
    execute.buckets[telemetry::histogram_bucket(0)] = 1;
    // Full-range observation: the topmost bucket's floor is 2^63, which a
    // double round-trip would corrupt.
    execute.buckets[telemetry::histogram_bucket(~std::uint64_t{0})] = 1;
    execute.count = 5;
    execute.sum = 3 * 123456ull + ~std::uint64_t{0};
    execute.max = ~std::uint64_t{0};
    auto& traces = report.counters.histograms[static_cast<std::size_t>(
        telemetry::Histogram::kBlockTraces)];
    traces.buckets[telemetry::histogram_bucket(16)] = 6;
    traces.count = 6;
    traces.sum = 96;
    traces.max = 16;

    report.spans = {{"block", 6, 1234567}, {"execute", 1, 99999999}};

    const std::string path = temp_path("v3.report.json");
    eval::write_run_report(path, report);
    const auto read = eval::read_run_report(path);
    std::remove(path.c_str());
    ASSERT_TRUE(read.has_value());
    EXPECT_EQ(read->counters.histograms, report.counters.histograms);
    EXPECT_EQ(read->spans, report.spans);
}

TEST(RunReportV3, ReaderAcceptsOlderVersions) {
    const char* common = R"(
      "campaign": "legacy",
      "fingerprint": {"kind": 1, "seed": 2, "traces": 3,
                      "block_size": 4, "payload": 5},
      "workers": 1,
      "lanes": 64,
      "wall_seconds": 1.5,
      "cpu_seconds": 2.5,
      "telemetry_enabled": false,
      "counters": {},
      "progress": {"completed_blocks": 1, "completed_traces": 16,
                   "resumed": false, "cancelled": false},
      "checkpoint_blocks": [],
      "metrics": {})";
    for (const int version : {1, 2}) {
        const std::string text =
            std::string("{\"schema\": \"glitchmask.run_report\", "
                        "\"version\": ") +
            std::to_string(version) + "," + common + "}\n";
        const std::string path = temp_path("legacy.report.json");
        {
            std::ofstream out(path, std::ios::binary);
            out << text;
        }
        const auto read = eval::read_run_report(path);
        std::remove(path.c_str());
        ASSERT_TRUE(read.has_value()) << "version " << version;
        EXPECT_EQ(read->campaign, "legacy");
        EXPECT_EQ(read->fingerprint.payload, 5u);
        // Absent v3 sections read back empty/zero, not as errors.
        EXPECT_TRUE(read->spans.empty());
        for (const telemetry::HistogramSnapshot& h :
             read->counters.histograms)
            EXPECT_EQ(h.count, 0u);
        EXPECT_FALSE(read->attribution.enabled);
    }
    // An unknown future version is still rejected.
    const std::string text =
        std::string("{\"schema\": \"glitchmask.run_report\", "
                    "\"version\": 99,") +
        common + "}\n";
    const std::string path = temp_path("future.report.json");
    {
        std::ofstream out(path, std::ios::binary);
        out << text;
    }
    EXPECT_THROW((void)eval::read_run_report(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(RunReportV3, SessionExportsTraceViaEnvDir) {
    const std::string dir = ::testing::TempDir() + "glitchmask_trace_dir";
    std::filesystem::create_directories(dir);
    ::setenv("GLITCHMASK_TRACE_DIR", dir.c_str(), 1);
    trace::set_enabled(false);
    trace::reset();

    eval::SequenceExperimentConfig config = small_config(2);
    config.run.campaign_id = "trace_session";
    const eval::SequenceLeakResult result = eval::run_sequence_experiment(
        core::all_input_sequences().front(), config);
    (void)result;
    ::unsetenv("GLITCHMASK_TRACE_DIR");
    EXPECT_FALSE(trace::enabled());  // the session restored the gate

    const std::string path = dir + "/trace_session.trace.json";
    const std::string text = read_file(path);
    std::remove(path.c_str());
    ASSERT_FALSE(text.empty()) << "session did not export " << path;
    const eval::JsonValue doc = eval::parse_json(text);
    const eval::JsonValue* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool saw_block = false;
    for (const eval::JsonValue& event : events->array)
        if (event.find("name") != nullptr &&
            event.find("name")->string == "block")
            saw_block = true;
    EXPECT_TRUE(saw_block);
    trace::reset();
}

}  // namespace
