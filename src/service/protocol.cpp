#include "service/protocol.hpp"

#include <stdexcept>

#include "service/json_writer.hpp"

namespace glitchmask::service {

namespace {

void encode_outcome_members(JsonWriter& w, const CampaignOutcome& outcome) {
    w.member("fingerprint", fingerprint_hex(outcome.fingerprint));
    w.member("total_traces", outcome.total_traces);
    w.member("completed_traces", outcome.completed_traces);
    w.member("cancelled", outcome.cancelled);
    w.member("resumed", outcome.resumed);
    w.member("checkpoint_degraded", outcome.checkpoint_degraded);
    w.member("snapshot_discarded", outcome.snapshot_discarded);
    w.key("metrics");
    w.begin_object();
    for (const auto& [name, value] : outcome.metrics) w.member(name, value);
    w.end_object();
}

void encode_job_members(JsonWriter& w, const JobStatus& status) {
    w.member("job", status.id);
    w.member("state", job_state_name(status.state));
    w.member("kind", campaign_kind_name(status.request.kind));
    w.member("cached", status.cached);
    w.member("coalesced", status.coalesced);
    if (status.state == JobState::Failed) {
        w.member("error_kind", status.error_kind);
        w.member("error_message", status.error_message);
    } else if (job_state_terminal(status.state)) {
        encode_outcome_members(w, status.outcome);
    }
    if (job_state_terminal(status.state) && !status.spans.empty()) {
        w.key("spans");
        w.begin_array();
        for (const trace::SpanSummary& span : status.spans) {
            w.begin_object();
            w.member("name", span.name);
            w.member("count", span.count);
            w.member("total_ns", span.total_ns);
            w.end_object();
        }
        w.end_array();
    }
}

std::string finish_line(JsonWriter& w) {
    std::string line = w.take();
    line += '\n';
    return line;
}

}  // namespace

ClientCommand parse_client_command(const std::string& line) {
    const eval::JsonValue json = [&] {
        try {
            return eval::parse_json(line);
        } catch (const std::exception& error) {
            throw std::runtime_error(std::string("malformed JSON: ") +
                                     error.what());
        }
    }();
    if (json.kind != eval::JsonValue::Kind::kObject)
        throw std::runtime_error("request must be a JSON object");
    const eval::JsonValue* op = json.find("op");
    if (op == nullptr || op->kind != eval::JsonValue::Kind::kString)
        throw std::runtime_error("missing string member 'op'");

    ClientCommand command;
    if (op->string == "submit") {
        command.op = ClientCommand::Op::Submit;
        command.request = decode_request(json);
        return command;
    }
    if (op->string == "status" || op->string == "cancel") {
        command.op = op->string == "status" ? ClientCommand::Op::Status
                                            : ClientCommand::Op::Cancel;
        const eval::JsonValue* job = json.find("job");
        if (job == nullptr || job->kind != eval::JsonValue::Kind::kUnsigned)
            throw std::runtime_error("'" + op->string +
                                     "' needs an unsigned member 'job'");
        command.job_id = job->unsigned_value;
        return command;
    }
    if (op->string == "stats") {
        command.op = ClientCommand::Op::Stats;
        return command;
    }
    if (op->string == "metrics") {
        command.op = ClientCommand::Op::Metrics;
        return command;
    }
    if (op->string == "history") {
        command.op = ClientCommand::Op::History;
        const eval::JsonValue* fp = json.find("fingerprint");
        if (fp == nullptr || fp->kind != eval::JsonValue::Kind::kString ||
            fp->string.empty())
            throw std::runtime_error(
                "'history' needs a string member 'fingerprint'");
        command.fingerprint = fp->string;
        return command;
    }
    if (op->string == "shutdown") {
        command.op = ClientCommand::Op::Shutdown;
        if (const eval::JsonValue* drain = json.find("drain");
            drain != nullptr && drain->kind == eval::JsonValue::Kind::kBool)
            command.drain = drain->boolean;
        return command;
    }
    throw std::runtime_error("unknown op '" + op->string + "'");
}

std::string encode_accepted(std::uint64_t job_id,
                            const std::string& fingerprint_hex) {
    JsonWriter w;
    w.begin_object();
    w.member("event", "accepted");
    w.member("job", job_id);
    w.member("fingerprint", fingerprint_hex);
    w.end_object();
    return finish_line(w);
}

std::string encode_overloaded() {
    JsonWriter w;
    w.begin_object();
    w.member("event", "overloaded");
    w.end_object();
    return finish_line(w);
}

std::string encode_rejected(const std::string& reason) {
    JsonWriter w;
    w.begin_object();
    w.member("event", "rejected");
    w.member("reason", reason);
    w.end_object();
    return finish_line(w);
}

std::string encode_progress(std::uint64_t job_id,
                            const telemetry::ProgressUpdate& update) {
    JsonWriter w;
    w.begin_object();
    w.member("event", "progress");
    w.member("job", job_id);
    w.member("completed", update.completed_traces);
    w.member("total", update.total_traces);
    w.member("traces_per_sec", update.traces_per_sec);
    w.member("eta_sec", update.eta_sec);
    w.end_object();
    return finish_line(w);
}

std::string encode_result(const JobStatus& status) {
    JsonWriter w;
    w.begin_object();
    w.member("event", "result");
    encode_job_members(w, status);
    w.end_object();
    return finish_line(w);
}

std::string encode_status(const JobStatus& status) {
    JsonWriter w;
    w.begin_object();
    w.member("event", "status");
    encode_job_members(w, status);
    w.end_object();
    return finish_line(w);
}

std::string encode_stats(const CampaignService::Stats& stats) {
    JsonWriter w;
    w.begin_object();
    w.member("event", "stats");
    w.member("submitted", stats.submitted);
    w.member("executed", stats.executed);
    w.member("completed", stats.completed);
    w.member("cache_hits", stats.cache_hits);
    w.member("cache_misses", stats.cache_misses);
    w.member("coalesced", stats.coalesced);
    w.member("rejected_overloaded", stats.rejected_overloaded);
    w.member("failed", stats.failed);
    w.member("cancelled", stats.cancelled);
    w.member("timed_out", stats.timed_out);
    w.member("queued_now", stats.queued_now);
    w.member("running_now", stats.running_now);
    w.member("queue_peak", stats.queue_peak);
    w.end_object();
    return finish_line(w);
}

std::string encode_metrics(const telemetry::Snapshot& snapshot,
                           const CampaignService::MetricsInfo& info) {
    JsonWriter w;
    w.begin_object();
    w.member("event", "metrics");

    w.key("counters");
    w.begin_object();
    for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
        if (snapshot.values[i] == 0) continue;
        w.member(telemetry::counter_name(
                     static_cast<telemetry::Counter>(i)),
                 snapshot.values[i]);
    }
    w.end_object();

    // Sparse histograms: only observed families, only nonzero buckets,
    // each bucket as [floor, count].
    w.key("histograms");
    w.begin_object();
    for (std::size_t i = 0; i < telemetry::kHistogramCount; ++i) {
        const telemetry::HistogramSnapshot& h = snapshot.histograms[i];
        if (h.count == 0) continue;
        w.key(telemetry::histogram_name(
            static_cast<telemetry::Histogram>(i)));
        w.begin_object();
        w.member("count", h.count);
        w.member("sum", h.sum);
        w.member("max", h.max);
        w.key("buckets");
        w.begin_array();
        for (std::size_t b = 0; b < telemetry::kHistogramBuckets; ++b) {
            if (h.buckets[b] == 0) continue;
            w.begin_array();
            w.value(telemetry::histogram_bucket_floor(b));
            w.value(h.buckets[b]);
            w.end_array();
        }
        w.end_array();
        w.end_object();
    }
    w.end_object();

    w.key("gauges");
    w.begin_object();
    for (std::size_t i = 0; i < telemetry::kGaugeCount; ++i) {
        w.member(telemetry::gauge_name(static_cast<telemetry::Gauge>(i)),
                 snapshot.gauges[i]);
    }
    w.end_object();

    w.key("service");
    w.begin_object();
    w.member("queue_depth", info.stats.queued_now);
    w.member("running", info.stats.running_now);
    w.member("queue_peak", info.stats.queue_peak);
    w.member("cache_entries", info.cache_entries);
    w.member("cache_hit_rate", info.cache_hit_rate);
    w.member("spool_bytes", info.spool_bytes);
    w.end_object();

    w.end_object();
    return finish_line(w);
}

std::string encode_history(const std::string& fingerprint_hex,
                           const std::vector<obs::LedgerEntry>& entries) {
    JsonWriter w;
    w.begin_object();
    w.member("event", "history");
    w.member("fingerprint", fingerprint_hex);
    w.key("entries");
    w.begin_array();
    for (const obs::LedgerEntry& entry : entries) {
        w.begin_object();
        w.member("source", entry.source);
        w.member("campaign", entry.campaign);
        w.member("status", entry.status);
        w.member("revision", entry.revision);
        w.member("host", entry.host);
        w.member("utc", entry.utc);
        w.member("wall_seconds", entry.wall_seconds);
        w.member("max_abs_t1", entry.max_abs_t1);
        w.member("toggles", entry.toggles);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return finish_line(w);
}

std::string encode_shutting_down() {
    JsonWriter w;
    w.begin_object();
    w.member("event", "shutting_down");
    w.end_object();
    return finish_line(w);
}

}  // namespace glitchmask::service
