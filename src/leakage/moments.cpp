#include "leakage/moments.hpp"

#include <cmath>
#include <stdexcept>

namespace glitchmask::leakage {

namespace {

/// Binomial coefficients up to the small orders we use (p <= ~12).
[[nodiscard]] double binomial(int n, int k) {
    double result = 1.0;
    for (int i = 1; i <= k; ++i)
        result = result * static_cast<double>(n - k + i) / static_cast<double>(i);
    return result;
}

[[nodiscard]] double ipow(double base, int exponent) {
    double result = 1.0;
    for (int i = 0; i < exponent; ++i) result *= base;
    return result;
}

}  // namespace

MomentAccumulator::MomentAccumulator(int max_order) {
    if (max_order < 2) throw std::invalid_argument("MomentAccumulator: order < 2");
    sums_.assign(static_cast<std::size_t>(max_order) + 1, 0.0);
}

void MomentAccumulator::add(double x) {
    const double n1 = n_;
    n_ += 1.0;
    const double delta = x - mean_;
    const double delta_n = delta / n_;
    mean_ += delta_n;
    if (n1 == 0.0) return;  // all central sums stay zero for the first point

    const int max_p = max_order();
    // Update from the highest order down so lower-order sums retain their
    // pre-update values (Pebay 2008, single-point increment).
    for (int p = max_p; p >= 2; --p) {
        double update = sums_[p];
        for (int k = 1; k <= p - 2; ++k)
            update += binomial(p, k) * sums_[p - k] * ipow(-delta_n, k);
        const double term = n1 * delta / n_;
        update += ipow(term, p) * (1.0 - ipow(-1.0 / n1, p - 1));
        sums_[p] = update;
    }
}

void MomentAccumulator::add_batch(std::span<const double> values) {
    for (const double x : values) add(x);
}

void MomentAccumulator::merge(const MomentAccumulator& other) {
    if (other.max_order() != max_order())
        throw std::invalid_argument("MomentAccumulator::merge: order mismatch");
    if (other.n_ == 0.0) return;
    if (n_ == 0.0) {
        *this = other;
        return;
    }
    const double na = n_;
    const double nb = other.n_;
    const double n = na + nb;
    const double delta = other.mean_ - mean_;

    std::vector<double> merged = sums_;
    const int max_p = max_order();
    for (int p = 2; p <= max_p; ++p) {
        double value = sums_[p] + other.sums_[p];
        for (int k = 1; k <= p - 2; ++k)
            value += binomial(p, k) * (sums_[p - k] * ipow(-nb * delta / n, k) +
                                       other.sums_[p - k] * ipow(na * delta / n, k));
        value += ipow(na * nb * delta / n, p) *
                 (1.0 / ipow(nb, p - 1) - ipow(-1.0 / na, p - 1));
        merged[p] = value;
    }
    sums_ = std::move(merged);
    mean_ += delta * nb / n;
    n_ = n;
}

void MomentAccumulator::reset() {
    n_ = 0.0;
    mean_ = 0.0;
    sums_.assign(sums_.size(), 0.0);
}

void MomentAccumulator::encode(SnapshotWriter& out) const {
    out.u32(static_cast<std::uint32_t>(max_order()));
    out.f64(n_);
    out.f64(mean_);
    for (const double sum : sums_) out.f64(sum);
}

MomentAccumulator MomentAccumulator::decode(SnapshotReader& in) {
    const std::uint32_t order = in.u32();
    if (order < 2 || order > 64)
        throw CampaignError(CampaignErrorKind::CorruptSnapshot,
                            "MomentAccumulator: implausible order in snapshot");
    MomentAccumulator acc(static_cast<int>(order));
    acc.n_ = in.f64();
    acc.mean_ = in.f64();
    for (double& sum : acc.sums_) sum = in.f64();
    return acc;
}

double MomentAccumulator::central_moment(int p) const {
    if (p < 2 || p > max_order())
        throw std::out_of_range("MomentAccumulator::central_moment");
    if (n_ == 0.0) return 0.0;
    return sums_[p] / n_;
}

}  // namespace glitchmask::leakage
