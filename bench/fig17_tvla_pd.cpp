// Reproduces paper Fig. 17: leakage assessment of the protected DES
// design using secAND2-PD with the optimal 10-LUT DelayUnit.
//
//   (d) PRNG off: strong first-order leakage with very few traces
//       (paper: 33k; here: a few hundred).
//   (a)-(c) PRNG on, three fixed plaintexts.  The paper observes marginal
//       first-order excursions past +-4.5 (around 15M traces) and
//       attributes them to physical *coupling* between the long parallel
//       delay chains (Sec. VII-C).  We run each campaign twice: with the
//       coupling models disabled (clean, like an ideal layout) and with
//       the Miller energy + timing coupling enabled (the excursions
//       appear) -- directly exercising the paper's explanation.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "des/masked_des.hpp"
#include "eval/des_experiments.hpp"
#include "support/csv.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

using namespace glitchmask;

int main() {
    bench::banner("Fig. 17: TVLA of protected DES using secAND2-PD (10 LUTs)");

    des::MaskedDesOptions options;
    options.flavor = des::CoreFlavor::PD;
    options.delayunit_luts = 10;
    options.couple_adjacent = true;
    const des::MaskedDesCore core(options);

    const std::size_t prng_off_traces = bench::scaled_traces(400);
    const std::size_t prng_on_traces = bench::scaled_traces(3000);
    const double epsilon = env_double("GLITCHMASK_COUPLING_EPSILON", 2.0);

    TablePrinter table({"test", "coupling", "traces", "max|t1|", "max|t2|",
                        "1st-order verdict"});
    CsvWriter csv("fig17_tvla_pd.csv",
                  {"test", "coupling", "order", "cycle", "t"});

    auto emit_curves = [&csv](const eval::DesTvlaResult& r, const char* test,
                              const char* coupling) {
        for (int order = 1; order <= 3; ++order) {
            const std::vector<double> curve = r.campaign.t_curve(order);
            for (std::size_t c = 0; c < curve.size(); ++c)
                csv.raw_row({test, coupling, std::to_string(order),
                             std::to_string(c),
                             TablePrinter::num(curve[c], 4)});
        }
    };

    // (d) PRNG off sanity check.
    {
        eval::DesTvlaConfig config;
        config.traces = prng_off_traces;
        config.prng_on = false;
        config.seed = 404;
        const eval::DesTvlaResult r = eval::run_des_tvla(core, config);
        table.add_row({"Fig17d PRNG off", "off", std::to_string(r.traces),
                       TablePrinter::num(r.max_abs_t[1]),
                       TablePrinter::num(r.max_abs_t[2]),
                       bench::verdict(r.max_abs_t[1])});
        emit_curves(r, "prng_off", "off");
    }

    const std::uint64_t plaintexts[3] = {0xDA39A3EE5E6B4B0Dull,
                                         0x0123456789ABCDEFull,
                                         0xA5A5A5A55A5A5A5Aull};
    std::vector<leakage::TvlaCampaign> coupled_campaigns;
    double max_t1_ideal = 0.0;
    double max_t1_coupled = 0.0;
    for (int p = 0; p < 3; ++p) {
        const std::string base_name = std::string("Fig17") +
                                      static_cast<char>('a' + p) +
                                      " plaintext " + std::to_string(p + 1);
        for (const bool coupled : {false, true}) {
            eval::DesTvlaConfig config;
            config.traces = prng_on_traces;
            config.fixed_plaintext = plaintexts[p];
            config.seed = 505 + static_cast<std::uint64_t>(p);
            if (coupled) {
                config.coupling.timing_enabled = true;
                config.coupling_epsilon = epsilon;
            }
            eval::DesTvlaResult r = eval::run_des_tvla(core, config);
            table.add_row({base_name, coupled ? "on" : "off",
                           std::to_string(r.traces),
                           TablePrinter::num(r.max_abs_t[1]),
                           TablePrinter::num(r.max_abs_t[2]),
                           bench::verdict(r.max_abs_t[1])});
            emit_curves(r, ("pt" + std::to_string(p + 1)).c_str(),
                        coupled ? "on" : "off");
            if (coupled) {
                max_t1_coupled = std::max(max_t1_coupled, r.max_abs_t[1]);
                coupled_campaigns.push_back(std::move(r.campaign));
            } else {
                max_t1_ideal = std::max(max_t1_ideal, r.max_abs_t[1]);
            }
        }
    }
    table.print();

    const std::vector<std::size_t> consistent =
        leakage::consistent_exceedances(coupled_campaigns, 1);
    std::printf(
        "\nWith an ideal layout (coupling off) the PD core shows no\n"
        "first-order leakage; enabling the physical coupling models\n"
        "(Miller energy epsilon=%.2f + data-dependent chain timing) makes\n"
        "the first-order t-statistic exceed +-4.5 (%zu consistent indexes\n"
        "across plaintexts) -- the paper's Sec. VII-C explanation for the\n"
        "residual leakage it sees around 15M traces.\n",
        epsilon, consistent.size());
    std::printf("CSV: fig17_tvla_pd.csv\n");

    const bool shape_holds = max_t1_ideal < leakage::kTvlaThreshold &&
                             max_t1_coupled > leakage::kTvlaThreshold;
    return shape_holds ? 0 : 1;
}
