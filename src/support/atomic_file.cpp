#include "support/atomic_file.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "support/campaign_error.hpp"
#include "support/fault.hpp"

namespace glitchmask {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
    const int saved = errno;
    throw CampaignError(CampaignErrorKind::IoFailure,
                        what + " " + path + ": " + std::strerror(saved),
                        saved);
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable.  Some filesystems refuse to fsync directories; that
/// is not a correctness problem (the rename is still atomic), so errors
/// other than open failure are ignored.
void fsync_parent_dir(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return;
    (void)::fsync(fd);
    ::close(fd);
}

/// Runs one syscall with its fault-injection site: a configured fault
/// replaces the real call's result with -1/errno, otherwise the call runs
/// normally.
template <class Call>
auto faultable(const char* site, Call&& call) -> decltype(call()) {
    if (const int injected = fault::inject_errno(site); injected != 0) {
        errno = injected;
        return static_cast<decltype(call())>(-1);
    }
    return call();
}

/// RAII temp-file cleanup: any failure path between creation and the
/// final rename must unlink the temp file, or retries would accumulate
/// orphaned `.tmp` litter next to every checkpoint.
struct TempFileGuard {
    const std::string& path;
    bool armed = true;
    ~TempFileGuard() {
        if (armed) ::unlink(path.c_str());
    }
};

}  // namespace

void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
    const std::string tmp = path + ".tmp";

    // Snapshot-corruption site: a firing plan flips one byte of the
    // payload as written, so the next reader exercises its CRC rejection.
    std::vector<std::uint8_t> corrupted;
    if (fault::active()) {
        corrupted.assign(bytes.begin(), bytes.end());
        if (fault::inject_corrupt("atomic_file.payload", corrupted))
            bytes = corrupted;
        else
            corrupted.clear();
    }

    int fd = -1;
    for (;;) {
        fd = faultable("atomic_file.open", [&] {
            return ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
        });
        if (fd >= 0) break;
        if (errno == EINTR) continue;
        fail("atomic_write_file: cannot create", tmp);
    }
    TempFileGuard guard{tmp};

    std::size_t written = 0;
    while (written < bytes.size()) {
        const ssize_t n = faultable("atomic_file.write", [&] {
            return ::write(fd, bytes.data() + written, bytes.size() - written);
        });
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            fail("atomic_write_file: write to", tmp);
        }
        written += static_cast<std::size_t>(n);
    }
    for (;;) {
        const int rc = faultable("atomic_file.fsync", [&] { return ::fsync(fd); });
        if (rc == 0) break;
        if (errno == EINTR) continue;
        ::close(fd);
        fail("atomic_write_file: fsync of", tmp);
    }
    // close() must not be retried on EINTR (the descriptor's state is
    // unspecified and the fd may already be reusable); EINTR after a
    // clean fsync is treated as success.
    if (::close(fd) != 0 && errno != EINTR)
        fail("atomic_write_file: close of", tmp);
    for (;;) {
        const int renamed = faultable("atomic_file.rename", [&] {
            return ::rename(tmp.c_str(), path.c_str());
        });
        if (renamed == 0) break;
        if (errno == EINTR) continue;  // absorbed like every other site
        fail("atomic_write_file: rename to", path);
    }
    guard.armed = false;
    fsync_parent_dir(path);
}

std::optional<std::vector<std::uint8_t>> read_file_if_exists(
    const std::string& path) {
    int fd = -1;
    for (;;) {
        fd = faultable("atomic_file.read_open",
                       [&] { return ::open(path.c_str(), O_RDONLY); });
        if (fd >= 0) break;
        if (errno == ENOENT) return std::nullopt;
        if (errno == EINTR) continue;
        fail("read_file_if_exists: cannot open", path);
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t buffer[1 << 16];
    for (;;) {
        const ssize_t n = faultable("atomic_file.read", [&] {
            return ::read(fd, buffer, sizeof buffer);
        });
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            fail("read_file_if_exists: read of", path);
        }
        if (n == 0) break;
        bytes.insert(bytes.end(), buffer, buffer + n);
    }
    ::close(fd);
    return bytes;
}

}  // namespace glitchmask
