// Shared command-line flags for the bench and example binaries.
//
// Every driver-style binary accepts the same observability flags:
//   --progress[=seconds]  stderr heartbeat with rate + ETA (default 2 s;
//                         equivalent to GLITCHMASK_PROGRESS=seconds)
//   --report <path>       machine-readable JSON run report
//   --attribute           per-net leakage attribution (culprit ranking;
//                         equivalent to GLITCHMASK_ATTRIBUTION=1)
//   --top-k <n>           culprit-table depth (implies nothing by itself;
//                         only read when attribution is on)
//   --backend <name>      simulation backend: event (default) or compiled
//                         (equivalent to GLITCHMASK_BACKEND=name)
// Parsing exits with usage on anything unrecognised, so binaries that take
// no other arguments stay strict about typos.  Binaries with positional
// operands (e.g. examples/inspect_gadget's gadget selector) pass
// allow_positional = true and read CliOptions::positional.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "support/telemetry.hpp"

namespace glitchmask {

struct CliOptions {
    bool progress = false;
    double progress_interval = 2.0;
    std::string report_path;
    bool attribute = false;
    std::size_t top_k = 10;
    /// Simulation backend ("event"/"compiled"); empty = driver default.
    std::string backend;
    /// Non-flag operands, in order (empty unless allow_positional).
    std::vector<std::string> positional;
};

/// Parses the shared flags (exits with usage on anything unknown) and
/// activates the heartbeat when --progress was given.
[[nodiscard]] inline CliOptions parse_cli(int argc, char** argv,
                                          bool allow_positional = false) {
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--progress") {
            cli.progress = true;
        } else if (arg.rfind("--progress=", 0) == 0) {
            cli.progress = true;
            cli.progress_interval = std::atof(arg.c_str() + 11);
        } else if (arg == "--report" && i + 1 < argc) {
            cli.report_path = argv[++i];
        } else if (arg.rfind("--report=", 0) == 0) {
            cli.report_path = arg.substr(9);
        } else if (arg == "--attribute") {
            cli.attribute = true;
        } else if (arg == "--top-k" && i + 1 < argc) {
            cli.top_k = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg.rfind("--top-k=", 0) == 0) {
            cli.top_k = static_cast<std::size_t>(std::atoll(arg.c_str() + 8));
        } else if (arg == "--backend" && i + 1 < argc) {
            cli.backend = argv[++i];
        } else if (arg.rfind("--backend=", 0) == 0) {
            cli.backend = arg.substr(10);
        } else if (allow_positional && (arg.empty() || arg[0] != '-')) {
            cli.positional.push_back(arg);
        } else {
            std::fprintf(
                stderr,
                "unknown option '%s'\n"
                "usage: %s%s [--progress[=seconds]] [--report <path>]"
                " [--attribute] [--top-k <n>] [--backend <event|compiled>]\n",
                arg.c_str(), argv[0], allow_positional ? " [operand...]" : "");
            std::exit(2);
        }
    }
    if (cli.progress)
        telemetry::set_heartbeat_interval(
            cli.progress_interval > 0.0 ? cli.progress_interval : 2.0);
    return cli;
}

}  // namespace glitchmask
