// Per-net leakage attribution (leakage/attribution.hpp) end to end.
//
// The determinism contract mirrors the trace campaign's and is asserted
// the same way: EXPECT_EQ on raw doubles, never EXPECT_NEAR.  Worker
// counts, scalar-vs-bitsliced engines, and SIGKILL-resume must all
// produce the identical AttributionResult, and enabling attribution must
// not move the power statistics by a single bit.
//
// The golden ranking test pins the paper's spatial claim: Trichina's top
// culprit is the XOR-chain net accumulating the cross-domain product
// (g*/c1, |t| far above 4.5) while no secAND2-FF net comes anywhere near
// the threshold.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "des/masked_des.hpp"
#include "eval/des_experiments.hpp"
#include "eval/gadget_tvla.hpp"
#include "eval/run_report.hpp"
#include "leakage/attribution.hpp"
#include "leakage/ttest.hpp"
#include "sim/vcd.hpp"
#include "support/atomic_file.hpp"
#include "support/campaign_error.hpp"
#include "support/cancel.hpp"
#include "support/snapshot.hpp"

namespace glitchmask::eval {
namespace {

std::string temp_path(const std::string& name) {
    const std::string path = ::testing::TempDir() + "glitchmask_" + name;
    std::remove(path.c_str());
    return path;
}

GadgetTvlaConfig small_gadget_campaign(GadgetKind kind) {
    GadgetTvlaConfig config;
    config.gadget = kind;
    config.traces = 512;
    config.seed = 11;
    config.block_size = 64;
    config.workers = 2;
    config.lanes = 64;
    config.run.attribution = true;
    return config;
}

// ----- accumulator algebra ------------------------------------------------

leakage::AttributionAccumulator synthetic_acc(std::uint64_t salt) {
    leakage::AttributionAccumulator acc(3);
    acc.traces_fixed = 10 + salt;
    acc.traces_random = 20 + salt;
    for (std::size_t i = 0; i < acc.size(); ++i) {
        leakage::PointStats& p = acc.point(i);
        p.sum_fixed = 1.5 * static_cast<double>(i + salt);
        p.sumsq_fixed = 2.25 * static_cast<double>(i + salt);
        p.sum_random = 0.5 * static_cast<double>(i) + static_cast<double>(salt);
        p.sumsq_random = static_cast<double>(i * i + salt);
        p.toggles = 100 * (i + 1) + salt;
        p.glitches = 7 * i + salt;
    }
    return acc;
}

TEST(AttributionAccumulator, MergeIsComponentwiseAddition) {
    const leakage::AttributionAccumulator a = synthetic_acc(1);
    const leakage::AttributionAccumulator b = synthetic_acc(41);

    leakage::AttributionAccumulator merged = a;
    merged.merge(b);

    EXPECT_EQ(merged.traces_fixed, a.traces_fixed + b.traces_fixed);
    EXPECT_EQ(merged.traces_random, a.traces_random + b.traces_random);
    for (std::size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(merged.point(i).sum_fixed,
                  a.point(i).sum_fixed + b.point(i).sum_fixed);
        EXPECT_EQ(merged.point(i).sumsq_random,
                  a.point(i).sumsq_random + b.point(i).sumsq_random);
        EXPECT_EQ(merged.point(i).toggles,
                  a.point(i).toggles + b.point(i).toggles);
        EXPECT_EQ(merged.point(i).glitches,
                  a.point(i).glitches + b.point(i).glitches);
    }

    // Merging a default (zero-point) accumulator into itself is the
    // disabled path; it must stay empty and not throw.
    leakage::AttributionAccumulator off;
    off.merge(leakage::AttributionAccumulator{});
    EXPECT_FALSE(off.enabled());

    // Point-count mismatches are config bugs, not silent truncation.
    leakage::AttributionAccumulator wrong(2);
    EXPECT_THROW(wrong.merge(a), std::exception);
}

TEST(AttributionAccumulator, SnapshotRoundTripIsExactOverFullRange) {
    leakage::AttributionAccumulator acc(2);
    // Full-range u64 counters and awkward FP bit patterns: the encoding
    // must be exact, not printf-shaped.
    acc.traces_fixed = std::numeric_limits<std::uint64_t>::max();
    acc.traces_random = std::numeric_limits<std::uint64_t>::max() - 1;
    acc.point(0).sum_fixed = -0.0;
    acc.point(0).sumsq_fixed = std::numeric_limits<double>::denorm_min();
    acc.point(0).sum_random = 0x1.fffffffffffffp+1023;  // DBL_MAX
    acc.point(0).sumsq_random = 1.0 / 3.0;
    acc.point(0).toggles = std::numeric_limits<std::uint64_t>::max();
    acc.point(0).glitches = (1ull << 53) + 1;  // not double-representable
    acc.point(1).sum_fixed = 1e-300;
    acc.point(1).toggles = 0;

    SnapshotWriter out;
    acc.encode(out);
    const std::vector<std::uint8_t> sealed = std::move(out).finish();
    SnapshotReader in(sealed);
    const leakage::AttributionAccumulator back =
        leakage::AttributionAccumulator::decode(in);

    EXPECT_TRUE(in.exhausted());
    EXPECT_EQ(back, acc);  // defaulted ==: every field, exact
    EXPECT_TRUE(std::signbit(back.point(0).sum_fixed));
}

// ----- campaign determinism ----------------------------------------------

void expect_identical_attribution(const leakage::AttributionResult& a,
                                  const leakage::AttributionResult& b,
                                  const std::string& label) {
    ASSERT_EQ(a.enabled, b.enabled) << label;
    EXPECT_EQ(a.traces_fixed, b.traces_fixed) << label;
    EXPECT_EQ(a.traces_random, b.traces_random) << label;
    ASSERT_EQ(a.ranked.size(), b.ranked.size()) << label;
    for (std::size_t i = 0; i < a.ranked.size(); ++i)
        EXPECT_EQ(a.ranked[i], b.ranked[i]) << label << " rank " << i;
    EXPECT_EQ(a.abs_t, b.abs_t) << label;
    EXPECT_EQ(a.window_glitches, b.window_glitches) << label;
}

TEST(AttributionCampaign, WorkerCountInvariance) {
    GadgetTvlaConfig one = small_gadget_campaign(GadgetKind::Trichina);
    one.workers = 1;
    GadgetTvlaConfig four = small_gadget_campaign(GadgetKind::Trichina);
    four.workers = 4;

    const GadgetTvlaResult r1 = run_gadget_tvla(one);
    const GadgetTvlaResult r4 = run_gadget_tvla(four);
    EXPECT_EQ(r1.max_abs_t1, r4.max_abs_t1);
    expect_identical_attribution(r1.attribution, r4.attribution,
                                 "1 vs 4 workers");
}

TEST(AttributionCampaign, ScalarAndBitslicedEnginesAreBitIdentical) {
    GadgetTvlaConfig scalar = small_gadget_campaign(GadgetKind::Trichina);
    scalar.lanes = 1;
    GadgetTvlaConfig batch = small_gadget_campaign(GadgetKind::Trichina);
    batch.lanes = 64;

    const GadgetTvlaResult rs = run_gadget_tvla(scalar);
    const GadgetTvlaResult rb = run_gadget_tvla(batch);
    EXPECT_EQ(rs.max_abs_t1, rb.max_abs_t1);
    EXPECT_EQ(rs.max_abs_t2, rb.max_abs_t2);
    expect_identical_attribution(rs.attribution, rb.attribution,
                                 "scalar vs 64-lane");
}

TEST(AttributionCampaign, AttributionDoesNotPerturbPowerStatistics) {
    GadgetTvlaConfig off = small_gadget_campaign(GadgetKind::Trichina);
    off.run.attribution = false;
    GadgetTvlaConfig on = small_gadget_campaign(GadgetKind::Trichina);

    const GadgetTvlaResult r_off = run_gadget_tvla(off);
    const GadgetTvlaResult r_on = run_gadget_tvla(on);
    EXPECT_EQ(r_off.max_abs_t1, r_on.max_abs_t1);
    EXPECT_EQ(r_off.max_abs_t2, r_on.max_abs_t2);
    EXPECT_EQ(r_off.argmax_cycle, r_on.argmax_cycle);
    EXPECT_FALSE(r_off.attribution.enabled);
    EXPECT_TRUE(r_on.attribution.enabled);
}

TEST(AttributionCampaign, SigkillMidRunThenResumeIsBitIdentical) {
    const std::string path = temp_path("attr_sigkill.gmsnap");

    GadgetTvlaConfig plain = small_gadget_campaign(GadgetKind::Trichina);
    plain.lanes = 1;  // scalar: many small blocks, several checkpoints
    plain.block_size = 32;
    const GadgetTvlaResult baseline = run_gadget_tvla(plain);

    const pid_t child = fork();
    ASSERT_GE(child, 0) << "fork failed";
    if (child == 0) {
        GadgetTvlaConfig cfg = plain;
        cfg.run.checkpoint_path = path;
        cfg.run.checkpoint_every = 2;
        cfg.run.on_checkpoint = [](std::size_t completed_blocks) {
            if (completed_blocks >= 6) ::kill(::getpid(), SIGKILL);
        };
        (void)run_gadget_tvla(cfg);
        ::_exit(0);  // not reached
    }
    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status)) << "child exited instead of dying";
    ASSERT_EQ(WTERMSIG(status), SIGKILL);
    ASSERT_TRUE(read_file_if_exists(path).has_value());

    GadgetTvlaConfig resume = plain;
    resume.run.checkpoint_path = path;
    resume.workers = 4;  // resume at a different worker count
    const GadgetTvlaResult resumed = run_gadget_tvla(resume);
    EXPECT_TRUE(resumed.resumed);
    EXPECT_EQ(resumed.completed_traces, plain.traces);
    EXPECT_EQ(baseline.max_abs_t1, resumed.max_abs_t1);
    expect_identical_attribution(baseline.attribution, resumed.attribution,
                                 "SIGKILL resume");
    std::remove(path.c_str());
}

TEST(AttributionCampaign, ResumeAcrossAttributionToggleIsRejected) {
    const std::string path = temp_path("attr_toggle.gmsnap");

    // Leave a mid-run checkpoint behind via a cooperative cancel.
    CancelToken token;
    GadgetTvlaConfig cfg = small_gadget_campaign(GadgetKind::Trichina);
    cfg.lanes = 1;
    cfg.block_size = 32;
    cfg.run.checkpoint_path = path;
    cfg.run.checkpoint_every = 2;
    cfg.run.cancel = &token;
    cfg.run.on_checkpoint = [&token](std::size_t completed_blocks) {
        if (completed_blocks >= 4) token.request();
    };
    const GadgetTvlaResult partial = run_gadget_tvla(cfg);
    ASSERT_TRUE(partial.cancelled);
    ASSERT_TRUE(read_file_if_exists(path).has_value());

    // An attributed snapshot must not resume an unattributed run: the
    // payload layouts differ, so this is ConfigMismatch, not misparsing.
    GadgetTvlaConfig off = cfg;
    off.run.attribution = false;
    off.run.cancel = nullptr;
    off.run.on_checkpoint = nullptr;
    try {
        (void)run_gadget_tvla(off);
        FAIL() << "resume with attribution off accepted an attributed snapshot";
    } catch (const CampaignError& e) {
        EXPECT_EQ(e.kind(), CampaignErrorKind::ConfigMismatch);
    }
    std::remove(path.c_str());
}

// ----- the paper's spatial claim -----------------------------------------

TEST(AttributionGolden, TrichinaBlamesCrossDomainChainSecand2StaysClean) {
    GadgetTvlaConfig trichina = small_gadget_campaign(GadgetKind::Trichina);
    trichina.traces = 4000;
    const GadgetTvlaResult leaky = run_gadget_tvla(trichina);

    ASSERT_TRUE(leaky.attribution.enabled);
    ASSERT_FALSE(leaky.attribution.ranked.empty());
    const leakage::NetAttribution& top = leaky.attribution.ranked.front();
    // The culprit: the XOR accumulating the cross-domain product x0*y1
    // into the z0 chain (named c1 in trichina_and), leaking through
    // glitches exactly as the paper argues.
    EXPECT_GT(top.max_abs_t, leakage::kTvlaThreshold);
    EXPECT_EQ(top.kind, "XOR2");
    EXPECT_NE(top.name.find("/c1"), std::string::npos) << top.name;
    EXPECT_GT(top.glitches, 0u);
    // Ranking is sorted by max |t| descending.
    for (std::size_t i = 1; i < leaky.attribution.ranked.size(); ++i)
        EXPECT_GE(leaky.attribution.ranked[i - 1].max_abs_t,
                  leaky.attribution.ranked[i].max_abs_t);

    // secAND2-FF: the same campaign finds *no* net anywhere near the
    // threshold -- the delay separation neutralizes every site.
    GadgetTvlaConfig ff = small_gadget_campaign(GadgetKind::Ff);
    ff.traces = 4000;
    const GadgetTvlaResult clean = run_gadget_tvla(ff);
    ASSERT_TRUE(clean.attribution.enabled);
    for (const leakage::NetAttribution& net : clean.attribution.ranked)
        EXPECT_LT(net.max_abs_t, leakage::kTvlaThreshold) << net.name;
}

// ----- DES and mean-power drivers ----------------------------------------

TEST(AttributionDes, SboxScopeRestrictsAndRanks) {
    const des::MaskedDesCore core{des::MaskedDesOptions{}};
    DesTvlaConfig config;
    config.traces = 48;
    config.seed = 5;
    config.workers = 2;
    config.lanes = 64;
    config.run.attribution = true;
    config.run.attribution_scope = "sbox";

    const DesTvlaResult r = run_des_tvla(core, config);
    ASSERT_TRUE(r.attribution.enabled);
    EXPECT_EQ(r.attribution.windows, core.total_cycles());
    EXPECT_EQ(r.attribution.traces_fixed + r.attribution.traces_random,
              static_cast<std::uint64_t>(config.traces));
    ASSERT_FALSE(r.attribution.ranked.empty());
    for (const leakage::NetAttribution& net : r.attribution.ranked)
        EXPECT_NE(net.module.find("sbox"), std::string::npos)
            << net.name << " in " << net.module;

    // Scalar engine, same campaign: identical attribution.
    DesTvlaConfig scalar = config;
    scalar.lanes = 1;
    const DesTvlaResult rs = run_des_tvla(core, scalar);
    expect_identical_attribution(r.attribution, rs.attribution,
                                 "des scalar vs batch");
}

TEST(AttributionDes, MeanPowerAttributionIsGlitchHeatmapOnly) {
    const des::MaskedDesCore core{des::MaskedDesOptions{}};
    CampaignRunOptions run;
    run.attribution = true;
    run.attribution_scope = "sbox";

    const std::vector<double> plain =
        mean_power_trace(core, /*traces=*/32, /*seed=*/3);
    leakage::AttributionResult attribution;
    const std::vector<double> attributed =
        mean_power_trace(core, 32, 3, /*placement_seed=*/1, /*workers=*/2,
                         /*lanes=*/64, run, nullptr, &attribution);

    // The probe must not move the mean trace by a single bit.
    ASSERT_EQ(plain.size(), attributed.size());
    for (std::size_t i = 0; i < plain.size(); ++i)
        EXPECT_EQ(plain[i], attributed[i]) << "cycle " << i;

    ASSERT_TRUE(attribution.enabled);
    // One class only: every t-statistic is the degenerate-input sentinel;
    // the value of the run is the per-net glitch heatmap.
    EXPECT_EQ(attribution.traces_fixed, 0u);
    EXPECT_EQ(attribution.traces_random, 32u);
    std::uint64_t total_toggles = 0;
    for (const leakage::NetAttribution& net : attribution.ranked) {
        EXPECT_EQ(net.max_abs_t, 0.0) << net.name;
        total_toggles += net.toggles;
    }
    EXPECT_GT(total_toggles, 0u);
}

// ----- reports, exports, waveform markers --------------------------------

TEST(AttributionReportV2, RoundTripsThroughJson) {
    GadgetTvlaConfig config = small_gadget_campaign(GadgetKind::Trichina);
    config.run.attribution_top_k = 3;
    config.run.attribution_scope = "g";
    config.run.report_path = temp_path("attr_report.json");
    const GadgetTvlaResult r = run_gadget_tvla(config);
    ASSERT_TRUE(r.attribution.enabled);

    const auto report = read_run_report(config.run.report_path);
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(report->attribution.enabled);
    EXPECT_EQ(report->attribution.top_k, 3u);
    EXPECT_EQ(report->attribution.scope, "g");
    EXPECT_EQ(report->attribution.traces_fixed, r.attribution.traces_fixed);
    EXPECT_EQ(report->attribution.traces_random, r.attribution.traces_random);
    ASSERT_EQ(report->attribution.nets.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        const AttributionNetReport& net = report->attribution.nets[i];
        const leakage::NetAttribution& want = r.attribution.ranked[i];
        EXPECT_EQ(net.net, static_cast<std::uint64_t>(want.net));
        EXPECT_EQ(net.name, want.name);
        EXPECT_EQ(net.kind, want.kind);
        EXPECT_EQ(net.module, want.module);
        EXPECT_EQ(net.toggles, want.toggles);
        EXPECT_EQ(net.glitches, want.glitches);
    }
    std::remove(config.run.report_path.c_str());
}

TEST(AttributionReportV2, FullRangeCountersAndV1BackCompat) {
    // Synthetic report with counters a double cannot represent exactly.
    RunReport report;
    report.campaign = "attr_unit";
    report.attribution.enabled = true;
    report.attribution.top_k = 1;
    report.attribution.traces_fixed =
        std::numeric_limits<std::uint64_t>::max();
    report.attribution.traces_random = (1ull << 53) + 1;
    AttributionNetReport net;
    net.net = 42;
    net.name = "g0/c1";
    net.kind = "XOR2";
    net.module = "g0/";
    net.max_abs_t = 21.5;
    net.toggles = std::numeric_limits<std::uint64_t>::max() - 7;
    net.glitches = (1ull << 60) + 3;
    report.attribution.nets.push_back(net);

    const std::string path = temp_path("attr_unit_report.json");
    write_run_report(path, report);
    const auto back = read_run_report(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->attribution, report.attribution);  // exact u64 parse
    std::remove(path.c_str());

    // An unattributed report renders with no attribution section and
    // reads back disabled -- exactly how every v1 file parses.
    RunReport v1;
    v1.campaign = "plain";
    const std::string rendered = render_run_report(v1);
    EXPECT_EQ(rendered.find("\"attribution\""), std::string::npos);
    const std::string v1_path = temp_path("plain_report.json");
    write_run_report(v1_path, v1);
    const auto plain = read_run_report(v1_path);
    ASSERT_TRUE(plain.has_value());
    EXPECT_FALSE(plain->attribution.enabled);
    std::remove(v1_path.c_str());
}

TEST(AttributionExports, CsvAndAnnotatedDotCarryTheRanking) {
    GadgetTvlaConfig config = small_gadget_campaign(GadgetKind::Trichina);
    config.traces = 1024;
    const GadgetTvlaResult r = run_gadget_tvla(config);
    ASSERT_TRUE(r.attribution.enabled);

    const std::string csv = leakage::attribution_csv(r.attribution);
    EXPECT_NE(csv.find("net,name,kind,module,max_abs_t"), std::string::npos);
    EXPECT_NE(csv.find("abs_t_w0"), std::string::npos);
    EXPECT_NE(csv.find(r.attribution.ranked.front().name), std::string::npos);
    // One header plus one row per ranked net.
    const std::size_t lines =
        static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
    EXPECT_EQ(lines, r.attribution.ranked.size() + 1);

    const GadgetHarness harness(config.gadget, config.replicas,
                                config.placement_seed);
    const std::string dot =
        leakage::attribution_dot(harness.nl(), r.attribution, /*top_k=*/3);
    EXPECT_NE(dot.find("|t|="), std::string::npos);
    EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(AttributionVcd, GlitchMarkerFlagsOnlyGlitchWindows) {
    core::Netlist nl;
    const netlist::NetId a = nl.input("a");
    nl.freeze();

    const std::string path = temp_path("marker.vcd");
    {
        sim::VcdWriter vcd(nl, path, {a},
                           sim::GlitchMarkerConfig{a, /*window_ps=*/90000});
        // Window 0: three transitions -> a glitch; the marker rises at the
        // second one and drops at the window boundary.  Window 1: a single
        // clean transition -> the marker stays low.
        vcd.on_toggle(a, 1000, true);
        vcd.on_toggle(a, 2000, false);
        vcd.on_toggle(a, 3000, true);
        vcd.on_toggle(a, 95000, false);
        vcd.close();
    }
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string vcd_text = buffer.str();

    EXPECT_NE(vcd_text.find("a_glitchmark"), std::string::npos);
    // Net code is "!" (first watched), marker code is "\"" (second var).
    EXPECT_NE(vcd_text.find("#2000\n0!\n1\""), std::string::npos)
        << vcd_text;  // marker rises with the second transition
    EXPECT_NE(vcd_text.find("#90000\n0\""), std::string::npos)
        << vcd_text;  // and drops at the window boundary
    // Exactly one rise: the clean window-1 transition adds none.
    EXPECT_EQ(vcd_text.find("1\""), vcd_text.rfind("1\""));
    std::remove(path.c_str());
}

// ----- plan / probe units -------------------------------------------------

TEST(AttributionPlan, ScopeFilterWatchesOneGadget) {
    const GadgetCircuit circuit =
        build_gadget_circuit(GadgetKind::Trichina, /*replicas=*/4);
    const leakage::AttributionPlan all(circuit.nl, /*windows=*/5,
                                       /*window_ps=*/90000);
    const leakage::AttributionPlan g0(circuit.nl, 5, 90000, "g0");

    EXPECT_EQ(all.net_count(), circuit.nl.size());
    EXPECT_EQ(all.points(), circuit.nl.size() * 5);
    ASSERT_TRUE(g0.enabled());
    EXPECT_LT(g0.net_count(), all.net_count());
    for (std::size_t i = 0; i < g0.net_count(); ++i) {
        const std::string& module =
            circuit.nl.module_names()[circuit.nl.module_of(g0.net(i))];
        EXPECT_NE(module.find("g0"), std::string::npos) << module;
    }
    // Unwatched nets map to the sentinel.
    EXPECT_EQ(g0.probe_of(circuit.x_in.s0), leakage::AttributionPlan::kUnwatched);

    EXPECT_THROW(leakage::AttributionPlan(circuit.nl, 0, 90000),
                 std::invalid_argument);
    EXPECT_THROW(leakage::AttributionPlan(circuit.nl, 5, 0),
                 std::invalid_argument);
}

TEST(AttributionProbe, CountsWindowsAndSaturatesAt255) {
    core::Netlist nl;
    const netlist::NetId a = nl.input("a");
    nl.freeze();
    const leakage::AttributionPlan plan(nl, /*windows=*/2, /*window_ps=*/100);
    leakage::AttributionProbe probe(plan, /*next=*/nullptr);
    leakage::AttributionAccumulator acc(plan.points());

    probe.begin_trace();
    // 300 toggles in window 0 saturate at 255; 2 toggles in window 1 are
    // exact; toggles past the last window are dropped.
    for (int i = 0; i < 300; ++i) probe.on_toggle(a, 50, i % 2 == 0);
    probe.on_toggle(a, 150, true);
    probe.on_toggle(a, 151, false);
    probe.on_toggle(a, 999, true);  // window 9: out of range, dropped
    probe.fold_trace(/*fixed=*/true, acc);

    const std::size_t probe_a = plan.probe_of(a);
    const std::size_t w0 = plan.point_index(probe_a, 0);
    const std::size_t w1 = plan.point_index(probe_a, 1);
    EXPECT_EQ(acc.traces_fixed, 1u);
    EXPECT_EQ(acc.point(w0).sum_fixed, 255.0);
    EXPECT_EQ(acc.point(w0).toggles, 255u);
    EXPECT_EQ(acc.point(w0).glitches, 254u);
    EXPECT_EQ(acc.point(w1).sum_fixed, 2.0);
    EXPECT_EQ(acc.point(w1).glitches, 1u);

    // fold_trace re-armed the probe: a quiet trace adds only the class
    // count.
    probe.fold_trace(/*fixed=*/false, acc);
    EXPECT_EQ(acc.traces_random, 1u);
    EXPECT_EQ(acc.point(w0).sum_random, 0.0);
}

}  // namespace
}  // namespace glitchmask::eval
