#include "eval/des_experiments.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/sharing.hpp"
#include "eval/parallel_campaign.hpp"
#include "eval/run_report.hpp"
#include "power/batch_power.hpp"
#include "sim/batch_simulator.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace glitchmask::eval {

namespace {

power::PowerConfig des_power_config(sim::TimePs period) {
    power::PowerConfig config;
    config.bin_ps = period;
    return config;
}

/// Per-worker DES simulator replica over the shared netlist/delay-model.
struct DesWorker {
    sim::ClockedSim sim;
    power::PowerRecorder recorder;
    std::vector<double> noisy;  // reused per-trace noise buffer
    telemetry::SimStats last_stats;  // delta base for telemetry

    DesWorker(const des::MaskedDesCore& core, const sim::DelayModel& dm,
              sim::ClockConfig clock, sim::CouplingConfig coupling,
              power::PowerConfig power_config)
        : sim(core.nl(), dm, clock, coupling),
          recorder(core.nl(), power_config) {
        recorder.attach(&sim.engine());
        sim.engine().set_sink(&recorder);
    }
};

/// Bitsliced replica: one event-queue pass per 64 consecutive traces.
struct BatchDesWorker {
    sim::BatchClockedSim sim;
    power::BatchPowerRecorder recorder;
    std::vector<double> noisy;  // bin-major (samples x 64) scratch
    std::vector<core::MaskedWord> pts, keys;
    std::vector<Xoshiro256> prngs;  // per-lane refresh generators
    telemetry::SimStats last_stats;  // delta base for telemetry

    BatchDesWorker(const des::MaskedDesCore& core, const sim::DelayModel& dm,
                   sim::ClockConfig clock, sim::CouplingConfig coupling,
                   power::PowerConfig power_config)
        : sim(core.nl(), dm, clock, coupling),
          recorder(core.nl(), power_config) {
        recorder.attach(&sim.engine());
        sim.engine().set_sink(&recorder);
    }
};

/// Trace n's full stimulus, a pure function of (config, n): class choice,
/// masked operands, and the generator whose continued state supplies the
/// per-round refresh bits -- the exact draw order of the original scalar
/// loop, shared by both paths.
struct DesStimulus {
    bool fixed = false;
    core::MaskedWord pt, key;
    Xoshiro256 rng;
};

DesStimulus des_stimulus(const DesTvlaConfig& config, std::size_t trace_index) {
    DesStimulus stim;
    stim.rng = trace_rng(config.seed, kStimulusStream, trace_index);
    stim.fixed = stim.rng.bit();
    const std::uint64_t pt = stim.fixed ? config.fixed_plaintext : stim.rng();
    if (config.prng_on) {
        stim.pt = core::mask_word(pt, 64, stim.rng);
        stim.key = core::mask_word(config.key, 64, stim.rng);
    } else {
        stim.pt = core::MaskedWord{0, pt};
        stim.key = core::MaskedWord{0, config.key};
    }
    return stim;
}

/// Per-block accumulator of the DES TVLA campaign (and its snapshot
/// payload: the campaign's accumulators plus the toggle counter).
struct DesBlockAcc {
    leakage::TvlaCampaign campaign;
    std::uint64_t toggles = 0;
};

void encode_des_acc(const DesBlockAcc& acc, SnapshotWriter& out) {
    acc.campaign.encode(out);
    out.u64(acc.toggles);
}

DesBlockAcc decode_des_acc(SnapshotReader& in) {
    DesBlockAcc acc{leakage::TvlaCampaign::decode(in), 0};
    acc.toggles = in.u64();
    return acc;
}

/// Everything that defines the campaign's statistics except workers and
/// lanes (both proven bit-identical) goes into the fingerprint.
CampaignFingerprint des_tvla_fingerprint(const DesTvlaConfig& config,
                                         std::size_t samples) {
    std::uint64_t payload = kFnvOffset;
    payload = fnv1a64(payload, config.placement_seed);
    payload = fnv1a64(payload, std::bit_cast<std::uint64_t>(config.noise_sigma));
    payload = fnv1a64(payload, config.prng_on ? 1 : 0);
    payload = fnv1a64(payload, config.fixed_plaintext);
    payload = fnv1a64(payload, config.key);
    payload = fnv1a64(payload, static_cast<std::uint64_t>(config.max_test_order));
    payload = fnv1a64(payload, static_cast<std::uint64_t>(samples));
    payload = fnv1a64(payload, config.coupling.timing_enabled ? 1 : 0);
    payload = fnv1a64(payload, config.coupling.window_ps);
    payload = fnv1a64(payload, config.coupling.slowdown_ps);
    payload = fnv1a64(payload, config.coupling.speedup_ps);
    payload =
        fnv1a64(payload, std::bit_cast<std::uint64_t>(config.coupling_epsilon));
    return CampaignFingerprint{fnv1a64_tag("des_tvla"), config.seed,
                               config.traces, config.block_size, payload};
}

}  // namespace

DesTvlaResult run_des_tvla(const des::MaskedDesCore& core,
                           const DesTvlaConfig& config) {
    validate_campaign_config(config.traces, config.block_size, config.lanes);

    sim::DelayConfig delay_config = sim::DelayConfig::spartan6();
    delay_config.seed = config.placement_seed;
    const sim::DelayModel dm(core.nl(), delay_config);

    sim::ClockConfig clock;
    clock.period_ps = core.recommended_period();
    power::PowerConfig power_config = des_power_config(clock.period_ps);
    power_config.coupling_epsilon = config.coupling_epsilon;

    const std::size_t samples = core.total_cycles();

    using BlockAcc = DesBlockAcc;

    // Timing coupling makes delays data-dependent, which the shared batch
    // schedule cannot express -- fall back to the scalar engine then.
    const unsigned lanes =
        resolve_lanes(config.lanes, config.coupling.timing_enabled);

    const CampaignFingerprint fingerprint = des_tvla_fingerprint(config, samples);
    ThreadPool pool(resolve_workers(config.workers));
    RunTelemetrySession session("des_tvla", config.run, fingerprint,
                                config.traces, pool.size(), lanes);
    CheckpointPolicy policy = make_checkpoint_policy(config.run, "des_tvla");
    session.attach(policy);
    const auto encode = [](const BlockAcc& acc, SnapshotWriter& out) {
        encode_des_acc(acc, out);
    };
    const auto decode = [](SnapshotReader& in) { return decode_des_acc(in); };
    CampaignProgress progress;

    const ShardPlan plan{config.traces, config.block_size};
    BlockAcc merged = [&] {
        if (lanes == sim::kBatchLanes) {
            // Lane groups are cut *within* each block (partial groups use
            // fewer lanes), so any block size stays bit-identical to the
            // scalar path; multiples of 64 merely amortize best.
            return run_sharded_blocks_checkpointed(
                pool, plan,
                [&] {
                    return std::make_unique<BatchDesWorker>(
                        core, dm, clock, config.coupling, power_config);
                },
                [&] {
                    return BlockAcc{
                        leakage::TvlaCampaign(samples, config.max_test_order),
                        0};
                },
                [&](std::unique_ptr<BatchDesWorker>& worker, std::size_t begin,
                    std::size_t end, BlockAcc& acc) {
                    for (std::size_t group = begin; group < end;
                         group += sim::kBatchLanes) {
                        const unsigned count = static_cast<unsigned>(
                            std::min<std::size_t>(sim::kBatchLanes,
                                                  end - group));
                        std::uint64_t fixed_mask = 0;
                        worker->pts.clear();
                        worker->keys.clear();
                        worker->prngs.clear();
                        for (unsigned lane = 0; lane < count; ++lane) {
                            DesStimulus stim =
                                des_stimulus(config, group + lane);
                            if (stim.fixed)
                                fixed_mask |= std::uint64_t{1} << lane;
                            worker->pts.push_back(stim.pt);
                            worker->keys.push_back(stim.key);
                            worker->prngs.push_back(stim.rng);
                        }

                        worker->sim.restart();
                        worker->recorder.begin_trace(samples);
                        (void)core.encrypt_batch(
                            worker->sim, worker->pts, worker->keys,
                            config.prng_on ? std::span<Xoshiro256>(worker->prngs)
                                           : std::span<Xoshiro256>{});

                        // Per-lane noise in bin order from that trace's
                        // counter-based stream -- the scalar draw sequence.
                        auto& noisy = worker->noisy;
                        noisy.resize(samples * sim::kBatchLanes);
                        for (unsigned lane = 0; lane < count; ++lane) {
                            Xoshiro256 noise_rng = trace_rng(
                                config.seed, kNoiseStream, group + lane);
                            for (std::size_t bin = 0; bin < samples; ++bin) {
                                double sample =
                                    worker->recorder.sample(bin, lane);
                                if (config.noise_sigma > 0.0)
                                    sample += noise_rng.gaussian(
                                        0.0, config.noise_sigma);
                                noisy[bin * sim::kBatchLanes + lane] = sample;
                            }
                            acc.toggles += worker->recorder.lane_toggles(lane);
                        }
                        acc.campaign.add_lane_traces(noisy, sim::kBatchLanes,
                                                     fixed_mask, count);
                    }
                    if (telemetry::enabled())
                        telemetry::record_sim_block(
                            worker->sim.engine().stats(), worker->last_stats);
                },
                [](BlockAcc& into, const BlockAcc& from) {
                    into.campaign.merge(from.campaign);
                    into.toggles += from.toggles;
                },
                policy, fingerprint, encode, decode, &progress,
                session.meter());
        }

        return run_sharded_blocks_checkpointed(
            pool, plan,
            [&] {
                return std::make_unique<DesWorker>(core, dm, clock,
                                                   config.coupling,
                                                   power_config);
            },
            [&] {
                return BlockAcc{
                    leakage::TvlaCampaign(samples, config.max_test_order), 0};
            },
            [&](std::unique_ptr<DesWorker>& worker, std::size_t begin,
                std::size_t end, BlockAcc& acc) {
                for (std::size_t trace_index = begin; trace_index < end;
                     ++trace_index) {
                    DesStimulus stim = des_stimulus(config, trace_index);
                    Xoshiro256 noise_rng =
                        trace_rng(config.seed, kNoiseStream, trace_index);

                    worker->sim.restart();
                    worker->recorder.begin_trace(samples);
                    (void)core.encrypt(worker->sim, stim.pt, stim.key,
                                       config.prng_on ? &stim.rng : nullptr);
                    worker->recorder.noisy_trace_into(
                        noise_rng, config.noise_sigma, worker->noisy);
                    acc.campaign.add_trace(stim.fixed, worker->noisy);
                    acc.toggles += worker->recorder.trace_toggles();
                }
                if (telemetry::enabled())
                    telemetry::record_sim_block(worker->sim.engine().stats(),
                                                worker->last_stats);
            },
            [](BlockAcc& into, const BlockAcc& from) {
                into.campaign.merge(from.campaign);
                into.toggles += from.toggles;
            },
            policy, fingerprint, encode, decode, &progress, session.meter());
    }();

    DesTvlaResult result(samples, config.max_test_order);
    result.samples = samples;
    result.traces = config.traces;
    result.completed_traces = progress.completed_traces;
    result.cancelled = progress.cancelled;
    result.resumed = progress.resumed;
    result.toggles = merged.toggles;
    result.campaign = std::move(merged.campaign);
    for (int order = 1; order <= config.max_test_order; ++order) {
        result.max_abs_t[order] =
            result.campaign.max_abs_t(order, &result.argmax[order]);
        session.add_metric(
            "max_abs_t_order" + std::to_string(order), result.max_abs_t[order]);
    }
    session.add_metric("toggles", static_cast<double>(result.toggles));
    session.finish(progress);
    return result;
}

std::vector<double> mean_power_trace(const des::MaskedDesCore& core,
                                     std::size_t traces, std::uint64_t seed,
                                     std::uint64_t placement_seed,
                                     unsigned workers, unsigned lanes,
                                     const CampaignRunOptions& run,
                                     CampaignProgress* progress) {
    validate_campaign_config(traces, /*block_size=*/64, lanes);

    sim::DelayConfig delay_config = sim::DelayConfig::spartan6();
    delay_config.seed = placement_seed;
    const sim::DelayModel dm(core.nl(), delay_config);
    sim::ClockConfig clock;
    clock.period_ps = core.recommended_period();
    const power::PowerConfig power_config = des_power_config(clock.period_ps);

    const std::size_t samples = core.total_cycles();
    ThreadPool pool(resolve_workers(workers));
    const ShardPlan plan{traces, /*block_size=*/64};
    const unsigned resolved = resolve_lanes(lanes, /*timing_coupling=*/false);

    std::uint64_t payload = kFnvOffset;
    payload = fnv1a64(payload, placement_seed);
    payload = fnv1a64(payload, static_cast<std::uint64_t>(samples));
    const CampaignFingerprint fingerprint{fnv1a64_tag("mean_power"), seed,
                                          traces, plan.block_size, payload};
    RunTelemetrySession session("mean_power", run, fingerprint, traces,
                                pool.size(), resolved);
    CheckpointPolicy policy = make_checkpoint_policy(run, "mean_power");
    session.attach(policy);
    const auto encode = [](const std::vector<double>& acc, SnapshotWriter& out) {
        out.u64(acc.size());
        for (double v : acc) out.f64(v);
    };
    const auto decode = [samples](SnapshotReader& in) {
        const std::uint64_t size = in.u64();
        if (size != samples)
            throw CampaignError(CampaignErrorKind::CorruptSnapshot,
                                "snapshot: mean-power sample count mismatch");
        std::vector<double> acc(samples);
        for (double& v : acc) v = in.f64();
        return acc;
    };
    CampaignProgress local_progress;
    CampaignProgress& prog = progress != nullptr ? *progress : local_progress;

    std::vector<double> mean = [&] {
        if (resolved == sim::kBatchLanes) {
            return run_sharded_blocks_checkpointed(
                pool, plan,
                [&] {
                    return std::make_unique<BatchDesWorker>(
                        core, dm, clock, sim::CouplingConfig{}, power_config);
                },
                [&] { return std::vector<double>(samples, 0.0); },
                [&](std::unique_ptr<BatchDesWorker>& worker, std::size_t begin,
                    std::size_t end, std::vector<double>& acc) {
                    for (std::size_t group = begin; group < end;
                         group += sim::kBatchLanes) {
                        const unsigned count = static_cast<unsigned>(
                            std::min<std::size_t>(sim::kBatchLanes,
                                                  end - group));
                        worker->pts.clear();
                        worker->keys.clear();
                        worker->prngs.clear();
                        for (unsigned lane = 0; lane < count; ++lane) {
                            Xoshiro256 rng = trace_rng(seed, kStimulusStream,
                                                       group + lane);
                            const std::uint64_t pt = rng();
                            const std::uint64_t key = rng();
                            worker->pts.push_back(core::mask_word(pt, 64, rng));
                            worker->keys.push_back(
                                core::mask_word(key, 64, rng));
                            worker->prngs.push_back(rng);
                        }
                        worker->sim.restart();
                        worker->recorder.begin_trace(samples);
                        (void)core.encrypt_batch(worker->sim, worker->pts,
                                                 worker->keys, worker->prngs);
                        // Lane order == trace order, so each bin's partial
                        // sum sees the same addend sequence as the scalar
                        // per-trace loop.
                        for (unsigned lane = 0; lane < count; ++lane)
                            for (std::size_t i = 0; i < samples; ++i)
                                acc[i] += worker->recorder.sample(i, lane);
                    }
                    if (telemetry::enabled())
                        telemetry::record_sim_block(
                            worker->sim.engine().stats(), worker->last_stats);
                },
                [](std::vector<double>& into, const std::vector<double>& from) {
                    for (std::size_t i = 0; i < into.size(); ++i)
                        into[i] += from[i];
                },
                policy, fingerprint, encode, decode, &prog, session.meter());
        }

        return run_sharded_blocks_checkpointed(
            pool, plan,
            [&] {
                return std::make_unique<DesWorker>(core, dm, clock,
                                                   sim::CouplingConfig{},
                                                   power_config);
            },
            [&] { return std::vector<double>(samples, 0.0); },
            [&](std::unique_ptr<DesWorker>& worker, std::size_t begin,
                std::size_t end, std::vector<double>& acc) {
                for (std::size_t trace_index = begin; trace_index < end;
                     ++trace_index) {
                    Xoshiro256 rng =
                        trace_rng(seed, kStimulusStream, trace_index);
                    worker->sim.restart();
                    worker->recorder.begin_trace(samples);
                    const std::uint64_t pt = rng();
                    const std::uint64_t key = rng();
                    (void)core.encrypt_value(worker->sim, pt, key, &rng);
                    const std::vector<double>& trace = worker->recorder.trace();
                    for (std::size_t i = 0; i < samples; ++i)
                        acc[i] += trace[i];
                }
                if (telemetry::enabled())
                    telemetry::record_sim_block(worker->sim.engine().stats(),
                                                worker->last_stats);
            },
            [](std::vector<double>& into, const std::vector<double>& from) {
                for (std::size_t i = 0; i < into.size(); ++i) into[i] += from[i];
            },
            policy, fingerprint, encode, decode, &prog, session.meter());
    }();
    // A cancelled run averages over the traces it actually folded in.
    const std::size_t denom = prog.completed_traces > 0
                                  ? prog.completed_traces
                                  : traces;
    for (double& v : mean) v /= static_cast<double>(denom);
    session.finish(prog);
    return mean;
}

}  // namespace glitchmask::eval
