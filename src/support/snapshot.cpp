#include "support/snapshot.hpp"

#include <array>

namespace glitchmask {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
    std::uint32_t crc = 0xFFFFFFFFu;
    for (const std::uint8_t byte : bytes)
        crc = kCrcTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

void SnapshotWriter::u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void SnapshotWriter::u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void SnapshotWriter::bytes(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
}

std::vector<std::uint8_t> SnapshotWriter::finish() && {
    const std::uint32_t crc = crc32(bytes_);
    u32(crc);
    return std::move(bytes_);
}

SnapshotReader::SnapshotReader(std::span<const std::uint8_t> sealed) {
    if (sealed.size() < 4)
        throw CampaignError(CampaignErrorKind::CorruptSnapshot,
                            "snapshot: shorter than its CRC trailer");
    data_ = sealed.first(sealed.size() - 4);
    std::uint32_t stored = 0;
    for (int i = 0; i < 4; ++i)
        stored |= static_cast<std::uint32_t>(sealed[data_.size() + i]) << (8 * i);
    if (crc32(data_) != stored)
        throw CampaignError(CampaignErrorKind::CorruptSnapshot,
                            "snapshot: CRC mismatch (torn or bit-flipped file)");
}

void SnapshotReader::require(std::size_t n) const {
    if (data_.size() - pos_ < n)
        throw CampaignError(CampaignErrorKind::CorruptSnapshot,
                            "snapshot: truncated payload");
}

std::uint32_t SnapshotReader::u32() {
    require(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return value;
}

std::uint64_t SnapshotReader::u64() {
    require(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return value;
}

}  // namespace glitchmask
