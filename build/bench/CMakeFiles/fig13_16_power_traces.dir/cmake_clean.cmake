file(REMOVE_RECURSE
  "CMakeFiles/fig13_16_power_traces.dir/fig13_16_power_traces.cpp.o"
  "CMakeFiles/fig13_16_power_traces.dir/fig13_16_power_traces.cpp.o.d"
  "fig13_16_power_traces"
  "fig13_16_power_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_16_power_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
