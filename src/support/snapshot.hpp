// Byte-level snapshot encoding for campaign checkpoints.
//
// The checkpoint format must round-trip floating-point accumulator state
// *exactly* (resume is promised to be bit-identical to an uninterrupted
// run), survive torn writes, and refuse corrupt input instead of reading
// garbage as data.  SnapshotWriter/SnapshotReader implement the byte
// layer: little-endian fixed-width integers, doubles as IEEE-754 bit
// patterns, and a trailing CRC-32 over the whole payload.  Readers throw
// CampaignError{CorruptSnapshot} on any truncated or checksum-failing
// input -- there is no partial decode.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "support/campaign_error.hpp"

namespace glitchmask {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Append-only encoder.  finish() seals the buffer with a trailing CRC-32;
/// nothing may be appended afterwards.
class SnapshotWriter {
public:
    void u32(std::uint32_t value);
    void u64(std::uint64_t value);
    void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }
    void bytes(std::span<const std::uint8_t> data);

    /// Seals the buffer with a CRC-32 of everything written so far and
    /// returns it; the buffer must not be written to afterwards.
    [[nodiscard]] std::vector<std::uint8_t> finish() &&;

    [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

private:
    std::vector<std::uint8_t> bytes_;
};

/// Decoder over a sealed buffer.  The constructor verifies the trailing
/// CRC-32 and throws CampaignError{CorruptSnapshot} when it does not
/// match; every read throws the same on truncation.
class SnapshotReader {
public:
    explicit SnapshotReader(std::span<const std::uint8_t> sealed);

    [[nodiscard]] std::uint32_t u32();
    [[nodiscard]] std::uint64_t u64();
    [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

    /// True when every payload byte has been consumed.
    [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

private:
    void require(std::size_t n) const;

    std::span<const std::uint8_t> data_;  // payload without the CRC trailer
    std::size_t pos_ = 0;
};

}  // namespace glitchmask
