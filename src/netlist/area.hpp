// ASIC area accounting in gate equivalents (GE, 1 GE = area of a NAND2).
//
// The paper reports NanGate 45nm Open Cell Library synthesis results
// (Table III).  We reproduce the accounting methodology: every cell kind
// gets a GE weight close to the NanGate X1 drive-strength cells, and a
// DelayBuf is costed as the paper costs its ASIC DelayUnits -- as a run
// of inverters (120 INV per 10-LUT DelayUnit, i.e. 12 INV per LUT-buffer).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace glitchmask::netlist {

struct AreaModel {
    /// GE weight per cell kind (indexed by CellKind).
    std::array<double, kNumCellKinds> ge{};

    /// NanGate-45nm-like defaults (X1 cells, NAND2_X1 = 1.0 GE;
    /// DFF includes the enable mux of an enable flop).
    [[nodiscard]] static AreaModel nangate45();

    /// Number of inverters a single DelayBuf stands for in the ASIC
    /// estimate (paper Sec. VI-B: 120 INV per 10-LUT DelayUnit).
    [[nodiscard]] static AreaModel nangate45_with_delay_inverters(
        double inverters_per_delaybuf);
};

/// Per-module area breakdown entry.
struct ModuleArea {
    std::string module;
    double ge = 0.0;
    std::size_t cells = 0;
};

/// Total area of `nl` in GE under `model`.
[[nodiscard]] double total_ge(const Netlist& nl, const AreaModel& model);

/// Area of cells excluding DelayBuf chains (the paper quotes the
/// secAND2-PD core as 12592 GE when DelayUnits are excluded).
[[nodiscard]] double total_ge_excluding_delay(const Netlist& nl,
                                              const AreaModel& model);

/// GE per top-level module prefix (depth-1 hierarchy split).
[[nodiscard]] std::vector<ModuleArea> area_by_module(const Netlist& nl,
                                                     const AreaModel& model);

}  // namespace glitchmask::netlist
