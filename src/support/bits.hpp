// Small bit-twiddling helpers shared across the DES model, the gadget
// library and the test suite.  Bit numbering follows the convention stated
// at each function; DES-specific (1-based, MSB-first) numbering lives in
// des/des_reference.cpp, not here.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace glitchmask {

/// Bit `i` (0 = least significant) of `word`.
[[nodiscard]] constexpr bool bit_of(std::uint64_t word, unsigned i) noexcept {
    return ((word >> i) & 1u) != 0;
}

/// `word` with bit `i` (0 = LSB) set to `value`.
[[nodiscard]] constexpr std::uint64_t with_bit(std::uint64_t word, unsigned i,
                                               bool value) noexcept {
    return (word & ~(std::uint64_t{1} << i)) | (std::uint64_t{value} << i);
}

/// XOR-parity of `word`.
[[nodiscard]] constexpr bool parity(std::uint64_t word) noexcept {
    return (std::popcount(word) & 1) != 0;
}

/// Hamming weight.
[[nodiscard]] constexpr int hamming_weight(std::uint64_t word) noexcept {
    return std::popcount(word);
}

/// Hamming distance between two words.
[[nodiscard]] constexpr int hamming_distance(std::uint64_t a, std::uint64_t b) noexcept {
    return std::popcount(a ^ b);
}

/// Population count as a plain function: the batch recorder's per-lane
/// Hamming-activity accumulation is written against this name so the
/// intent ("count toggled lanes") reads at the call site.
[[nodiscard]] constexpr int popcount64(std::uint64_t word) noexcept {
    return std::popcount(word);
}

/// In-place 64x64 bit-matrix transpose (Hacker's Delight 7-3):
/// afterwards bit `j` of `m[i]` equals bit `i` of the original `m[j]`.
/// This is the lane transposition of bitsliced simulation -- 64 per-trace
/// words (one value per trace) become 64 per-bit lane words and back.
constexpr void transpose64(std::array<std::uint64_t, 64>& m) noexcept {
    std::uint64_t mask = 0x00000000FFFFFFFFULL;
    for (unsigned j = 32; j != 0; j >>= 1, mask ^= mask << j) {
        for (unsigned k = 0; k < 64; k = ((k | j) + 1) & ~j) {
            const std::uint64_t t = ((m[k] >> j) ^ m[k | j]) & mask;
            m[k] ^= t << j;
            m[k | j] ^= t;
        }
    }
}

/// Left-rotate the low `width` bits of `word` by `amount`.
[[nodiscard]] constexpr std::uint64_t rotl_bits(std::uint64_t word, unsigned width,
                                                unsigned amount) noexcept {
    const std::uint64_t mask = (width >= 64) ? ~std::uint64_t{0}
                                             : ((std::uint64_t{1} << width) - 1);
    word &= mask;
    amount %= width;
    return ((word << amount) | (word >> (width - amount))) & mask;
}

}  // namespace glitchmask
