#include "obs/ledger.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "service/json_writer.hpp"
#include "support/atomic_file.hpp"
#include "support/campaign_error.hpp"
#include "support/snapshot.hpp"
#include "support/telemetry.hpp"

namespace glitchmask::obs {

namespace {

using eval::JsonValue;

std::span<const std::uint8_t> as_bytes(std::string_view text) {
    return {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()};
}

/// JSON has no NaN/Inf; mirror run_report's policy of flattening them.
double finite(double value) { return std::isfinite(value) ? value : 0.0; }

const JsonValue& require(const JsonValue& object, std::string_view key) {
    const JsonValue* member = object.find(key);
    if (member == nullptr)
        throw std::runtime_error("ledger entry: missing field '" +
                                 std::string(key) + "'");
    return *member;
}

std::uint64_t require_u64(const JsonValue& object, std::string_view key) {
    const JsonValue& member = require(object, key);
    if (member.kind != JsonValue::Kind::kUnsigned)
        throw std::runtime_error("ledger entry: field '" + std::string(key) +
                                 "' is not an unsigned integer");
    return member.unsigned_value;
}

/// One line minus its '\n': validates the CRC wrapper and the checksum,
/// then decodes the entry.  Throws on any deviation -- the caller counts
/// the line as corrupt.
LedgerEntry decode_line(std::string_view line) {
    constexpr std::string_view kPrefix = "{\"crc32\":";
    constexpr std::string_view kMiddle = ",\"entry\":";
    if (line.substr(0, kPrefix.size()) != kPrefix)
        throw std::runtime_error("ledger line: bad wrapper prefix");
    std::size_t i = kPrefix.size();
    std::uint64_t crc = 0;
    bool digits = false;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
        crc = crc * 10 + static_cast<std::uint64_t>(line[i] - '0');
        if (crc > 0xFFFFFFFFull)
            throw std::runtime_error("ledger line: CRC out of range");
        ++i;
        digits = true;
    }
    if (!digits) throw std::runtime_error("ledger line: missing CRC");
    if (line.substr(i, kMiddle.size()) != kMiddle)
        throw std::runtime_error("ledger line: bad wrapper middle");
    i += kMiddle.size();
    if (line.size() <= i || line.back() != '}')
        throw std::runtime_error("ledger line: truncated wrapper");
    const std::string_view body = line.substr(i, line.size() - 1 - i);
    if (crc32(as_bytes(body)) != static_cast<std::uint32_t>(crc))
        throw std::runtime_error("ledger line: CRC mismatch");
    return decode_ledger_entry(eval::parse_json(body));
}

}  // namespace

std::string fingerprint_key(const eval::CampaignFingerprint& fingerprint) {
    const std::uint64_t words[5] = {fingerprint.kind, fingerprint.seed,
                                    fingerprint.traces, fingerprint.block_size,
                                    fingerprint.payload};
    std::string hex;
    hex.reserve(80);
    for (const std::uint64_t word : words) {
        char buffer[17];
        std::snprintf(buffer, sizeof buffer, "%016llx",
                      static_cast<unsigned long long>(word));
        hex += buffer;
    }
    return hex;
}

std::string render_ledger_entry(const LedgerEntry& entry) {
    service::JsonWriter w;
    w.begin_object();
    w.member("schema", kLedgerSchema);
    w.member("version", static_cast<std::uint64_t>(kLedgerVersion));
    w.member("source", entry.source);
    w.member("campaign", entry.campaign);
    w.key("fingerprint");
    w.begin_object();
    w.member("kind", entry.fingerprint.kind);
    w.member("seed", entry.fingerprint.seed);
    w.member("traces", entry.fingerprint.traces);
    w.member("block_size", entry.fingerprint.block_size);
    w.member("payload", entry.fingerprint.payload);
    w.end_object();
    w.member("revision", entry.revision);
    w.member("host", entry.host);
    w.member("utc", entry.utc);
    w.member("status", entry.status);
    w.member("backend", entry.backend);
    w.member("workers", static_cast<std::uint64_t>(entry.workers));
    w.member("lanes", static_cast<std::uint64_t>(entry.lanes));
    w.member("wall_seconds", finite(entry.wall_seconds));
    w.member("cpu_seconds", finite(entry.cpu_seconds));
    w.member("max_abs_t1", finite(entry.max_abs_t1));
    w.member("toggles", entry.toggles);
    w.key("attribution");
    w.begin_array();
    for (const LedgerNet& net : entry.attribution) {
        w.begin_object();
        w.member("net", net.net);
        w.member("name", net.name);
        w.member("max_abs_t", finite(net.max_abs_t));
        w.member("toggles", net.toggles);
        w.member("glitches", net.glitches);
        w.end_object();
    }
    w.end_array();
    w.key("phases");
    w.begin_array();
    for (const LedgerPhase& phase : entry.phases) {
        w.begin_object();
        w.member("name", phase.name);
        w.member("cpu_seconds", finite(phase.cpu_seconds));
        w.member("wall_seconds", finite(phase.wall_seconds));
        w.end_object();
    }
    w.end_array();
    w.key("metrics");
    w.begin_object();
    for (const auto& [name, value] : entry.metrics) w.member(name, finite(value));
    w.end_object();
    w.end_object();
    return w.take();
}

std::string render_ledger_line(const LedgerEntry& entry) {
    const std::string body = render_ledger_entry(entry);
    std::string line;
    line.reserve(body.size() + 32);
    line += "{\"crc32\":";
    line += std::to_string(crc32(as_bytes(body)));
    line += ",\"entry\":";
    line += body;
    line += "}\n";
    return line;
}

LedgerEntry decode_ledger_entry(const JsonValue& json) {
    if (json.kind != JsonValue::Kind::kObject)
        throw std::runtime_error("ledger entry: not a JSON object");
    const JsonValue& schema = require(json, "schema");
    if (schema.string != kLedgerSchema)
        throw std::runtime_error("ledger entry: unexpected schema '" +
                                 schema.string + "'");
    const std::uint64_t version = require_u64(json, "version");
    if (version < 1 || version > kLedgerVersion)
        throw std::runtime_error("ledger entry: unsupported version " +
                                 std::to_string(version));

    LedgerEntry entry;
    entry.source = require(json, "source").string;
    entry.campaign = require(json, "campaign").string;
    const JsonValue& fp = require(json, "fingerprint");
    entry.fingerprint.kind = require_u64(fp, "kind");
    entry.fingerprint.seed = require_u64(fp, "seed");
    entry.fingerprint.traces = require_u64(fp, "traces");
    entry.fingerprint.block_size = require_u64(fp, "block_size");
    entry.fingerprint.payload = require_u64(fp, "payload");
    entry.revision = require(json, "revision").string;
    entry.host = require(json, "host").string;
    entry.utc = require(json, "utc").string;
    entry.status = require(json, "status").string;
    entry.backend = require(json, "backend").string;
    entry.workers = static_cast<unsigned>(require_u64(json, "workers"));
    entry.lanes = static_cast<unsigned>(require_u64(json, "lanes"));
    entry.wall_seconds = require(json, "wall_seconds").as_number();
    entry.cpu_seconds = require(json, "cpu_seconds").as_number();
    entry.max_abs_t1 = require(json, "max_abs_t1").as_number();
    entry.toggles = require_u64(json, "toggles");
    for (const JsonValue& net_json : require(json, "attribution").array) {
        LedgerNet net;
        net.net = require_u64(net_json, "net");
        net.name = require(net_json, "name").string;
        net.max_abs_t = require(net_json, "max_abs_t").as_number();
        net.toggles = require_u64(net_json, "toggles");
        net.glitches = require_u64(net_json, "glitches");
        entry.attribution.push_back(std::move(net));
    }
    for (const JsonValue& phase_json : require(json, "phases").array) {
        LedgerPhase phase;
        phase.name = require(phase_json, "name").string;
        phase.cpu_seconds = require(phase_json, "cpu_seconds").as_number();
        phase.wall_seconds = require(phase_json, "wall_seconds").as_number();
        entry.phases.push_back(std::move(phase));
    }
    for (const auto& [name, value] : require(json, "metrics").object)
        entry.metrics.emplace_back(name, value.as_number());
    return entry;
}

LedgerFile read_ledger(const std::string& path) {
    LedgerFile file;
    const auto bytes = read_file_if_exists(path);
    if (!bytes.has_value()) return file;
    const std::string_view text(reinterpret_cast<const char*>(bytes->data()),
                                bytes->size());
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t newline = text.find('\n', pos);
        const std::size_t end =
            newline == std::string_view::npos ? text.size() : newline;
        const std::string_view line = text.substr(pos, end - pos);
        pos = end + 1;
        if (line.empty()) continue;
        try {
            // A final line without '\n' still counts when its CRC holds
            // (an append interrupted between the payload and nothing --
            // the newline is part of the same write -- cannot produce
            // one, but a manually-assembled ledger can).
            file.entries.push_back(decode_line(line));
        } catch (const std::exception&) {
            ++file.corrupt_lines;
        }
    }
    return file;
}

void append_ledger(const std::string& path, const LedgerEntry& entry) {
    const std::string line = render_ledger_line(entry);
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0)
        throw CampaignError(CampaignErrorKind::IoFailure,
                            "ledger append: cannot open '" + path +
                                "': " + std::strerror(errno),
                            errno);
    // One write per line keeps concurrent appenders line-atomic on any
    // POSIX filesystem (O_APPEND writes are not interleaved); retry only
    // the EINTR/short-write tail.
    std::size_t written = 0;
    int saved_errno = 0;
    while (written < line.size()) {
        const ssize_t n =
            ::write(fd, line.data() + written, line.size() - written);
        if (n < 0) {
            if (errno == EINTR) continue;
            saved_errno = errno;
            break;
        }
        written += static_cast<std::size_t>(n);
    }
    ::close(fd);
    if (written != line.size())
        throw CampaignError(CampaignErrorKind::IoFailure,
                            "ledger append: short write to '" + path +
                                "': " + std::strerror(saved_errno),
                            saved_errno);
}

void sort_ledger(std::vector<LedgerEntry>& entries) {
    // Decorate-sort-undecorate on (utc, revision, host, canonical text):
    // a total order over distinct entries, so any arrival interleaving of
    // the same set sorts identically.  '\0' separators keep field
    // boundaries from aliasing ("ab"+"c" vs "a"+"bc").
    std::vector<std::pair<std::string, std::size_t>> keys;
    keys.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const LedgerEntry& e = entries[i];
        std::string key;
        key.reserve(e.utc.size() + e.revision.size() + e.host.size() + 64);
        key += e.utc;
        key += '\0';
        key += e.revision;
        key += '\0';
        key += e.host;
        key += '\0';
        key += render_ledger_entry(e);
        keys.emplace_back(std::move(key), i);
    }
    std::sort(keys.begin(), keys.end());
    std::vector<LedgerEntry> sorted;
    sorted.reserve(entries.size());
    for (auto& [key, index] : keys) sorted.push_back(std::move(entries[index]));
    entries = std::move(sorted);
}

// ----- ingestion ---------------------------------------------------------

LedgerEntry entry_from_run_report(const eval::RunReport& report) {
    LedgerEntry entry;
    entry.source = "run_report";
    entry.campaign = report.campaign;
    entry.fingerprint = report.fingerprint;
    entry.revision = report.revision;
    entry.host = report.hostname;
    entry.utc = report.utc;
    entry.status = report.progress.cancelled ? "cancelled" : "completed";
    entry.workers = report.workers;
    entry.lanes = report.lanes;
    entry.wall_seconds = report.wall_seconds;
    entry.cpu_seconds = report.cpu_seconds;
    entry.toggles = report.counters.value(telemetry::Counter::kSimToggles);
    for (const auto& [name, value] : report.metrics) {
        if (name == "max_abs_t_order1") entry.max_abs_t1 = value;
        entry.metrics.emplace_back(name, value);
    }
    for (const eval::AttributionNetReport& net : report.attribution.nets) {
        entry.attribution.push_back(LedgerNet{net.net, net.name, net.max_abs_t,
                                              net.toggles, net.glitches});
    }
    // Phase split: CPU seconds from the phase.* counters (summed across
    // workers), wall seconds from the same-named trace span rollup when
    // the run collected one.
    const std::pair<const char*, telemetry::Counter> kPhases[] = {
        {"sim", telemetry::Counter::kPhaseSimNanos},
        {"noise", telemetry::Counter::kPhaseNoiseNanos},
        {"moments", telemetry::Counter::kPhaseMomentsNanos},
        {"attribution", telemetry::Counter::kPhaseAttributionNanos},
        {"checkpoint", telemetry::Counter::kCheckpointNanos},
    };
    for (const auto& [name, counter] : kPhases) {
        LedgerPhase phase;
        phase.name = name;
        phase.cpu_seconds =
            static_cast<double>(report.counters.value(counter)) * 1e-9;
        for (const trace::SpanSummary& span : report.spans)
            if (span.name == phase.name)
                phase.wall_seconds = static_cast<double>(span.total_ns) * 1e-9;
        if (phase.cpu_seconds > 0.0 || phase.wall_seconds > 0.0)
            entry.phases.push_back(std::move(phase));
    }
    return entry;
}

std::vector<LedgerEntry> entries_from_bench_json(const JsonValue& json) {
    if (json.kind != JsonValue::Kind::kObject)
        throw std::runtime_error("bench ingest: not a JSON object");
    const std::string workload = require(json, "workload").string;
    const std::uint64_t traces = require_u64(json, "traces");
    const std::uint64_t block_size = require_u64(json, "block_size");
    std::string revision, host, utc;
    if (const JsonValue* v = json.find("revision")) revision = v->string;
    if (const JsonValue* v = json.find("hostname")) host = v->string;
    if (const JsonValue* v = json.find("utc")) utc = v->string;

    // All bench fingerprints share a synthetic kind word (they are not
    // resumable campaigns); the payload word separates rows by their
    // scaling-axis coordinates, so cross-run history groups rows of the
    // same shape together.
    const std::uint64_t bench_kind = eval::fnv1a64_tag("bench_batch_sim");
    const std::uint64_t workload_seed = eval::fnv1a64_tag(workload.c_str());
    double noise_sigma = 0.0;
    if (const JsonValue* v = json.find("noise_sigma"))
        noise_sigma = v->as_number();

    std::vector<LedgerEntry> entries;

    // The headline entry: the top-level overhead/speedup figures CI
    // gates.  Every numeric/bool top-level key becomes a metric, so new
    // bench headline keys flow into the ledger without a schema change.
    {
        LedgerEntry headline;
        headline.source = "bench";
        headline.campaign = workload + "/headline";
        headline.fingerprint.kind = bench_kind;
        headline.fingerprint.seed = workload_seed;
        headline.fingerprint.traces = traces;
        headline.fingerprint.block_size = block_size;
        headline.fingerprint.payload =
            eval::fnv1a64(eval::kFnvOffset, eval::fnv1a64_tag("headline"));
        headline.revision = revision;
        headline.host = host;
        headline.utc = utc;
        for (const auto& [name, value] : json.object) {
            if (name == "series" || name == "workload" || name == "revision" ||
                name == "hostname" || name == "utc")
                continue;
            if (value.kind == JsonValue::Kind::kUnsigned ||
                value.kind == JsonValue::Kind::kNumber)
                headline.metrics.emplace_back(name, value.as_number());
            else if (value.kind == JsonValue::Kind::kBool)
                headline.metrics.emplace_back(name, value.boolean ? 1.0 : 0.0);
        }
        entries.push_back(std::move(headline));
    }

    const JsonValue& series = require(json, "series");
    for (const JsonValue& row : series.array) {
        LedgerEntry entry;
        entry.source = "bench";
        entry.backend = require(row, "backend").string;
        entry.lanes = static_cast<unsigned>(require_u64(row, "lanes"));
        entry.workers = static_cast<unsigned>(require_u64(row, "workers"));
        const std::uint64_t checkpoint_every =
            require_u64(row, "checkpoint_every");
        bool attribution = false;
        if (const JsonValue* v = row.find("attribution"))
            attribution = v->boolean;

        entry.campaign = workload + "/" + entry.backend + "-l" +
                         std::to_string(entry.lanes) + "-w" +
                         std::to_string(entry.workers);
        if (checkpoint_every > 0)
            entry.campaign += "-c" + std::to_string(checkpoint_every);
        if (attribution) entry.campaign += "-attr";

        entry.fingerprint.kind = bench_kind;
        entry.fingerprint.seed = workload_seed;
        entry.fingerprint.traces = traces;
        entry.fingerprint.block_size = block_size;
        std::uint64_t payload = eval::kFnvOffset;
        payload =
            eval::fnv1a64(payload, eval::fnv1a64_tag(entry.backend.c_str()));
        payload = eval::fnv1a64(payload, entry.lanes);
        payload = eval::fnv1a64(payload, entry.workers);
        payload = eval::fnv1a64(payload, checkpoint_every);
        payload = eval::fnv1a64(payload, attribution ? 1 : 0);
        payload =
            eval::fnv1a64(payload, std::bit_cast<std::uint64_t>(noise_sigma));
        entry.fingerprint.payload = payload;

        entry.revision = revision;
        entry.host = host;
        entry.utc = utc;
        entry.wall_seconds = require(row, "seconds").as_number();
        entry.max_abs_t1 = require(row, "max_abs_t1").as_number();
        entry.toggles = require_u64(row, "toggles");
        for (const char* name :
             {"traces_per_sec", "toggle_mb_per_sec", "speedup", "sim_events",
              "sim_glitches", "sim_inertial_cancels", "sim_queue_peak"}) {
            if (const JsonValue* v = row.find(name))
                entry.metrics.emplace_back(name, v->as_number());
        }
        if (const JsonValue* v = row.find("oversubscribed"))
            entry.metrics.emplace_back("oversubscribed", v->boolean ? 1.0 : 0.0);
        // "phases_cpu" is the honest name (per-phase CPU seconds summed
        // across workers); "phases" is the pre-rename alias older bench
        // artifacts carry.
        const JsonValue* phases = row.find("phases_cpu");
        if (phases == nullptr) phases = row.find("phases");
        if (phases != nullptr) {
            for (const auto& [name, value] : phases->object) {
                LedgerPhase phase;
                phase.name = name;
                phase.cpu_seconds = value.as_number();
                entry.phases.push_back(std::move(phase));
            }
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

std::vector<LedgerEntry> entries_from_file_text(std::string_view text,
                                                const IngestOverrides& overrides) {
    const JsonValue root = eval::parse_json(text);
    if (root.kind != JsonValue::Kind::kObject)
        throw std::runtime_error("ledger ingest: not a JSON object");
    std::vector<LedgerEntry> entries;
    const JsonValue* schema = root.find("schema");
    if (schema != nullptr && schema->string == eval::kRunReportSchema) {
        entries.push_back(entry_from_run_report(eval::decode_run_report(root)));
    } else if (root.find("workload") != nullptr &&
               root.find("series") != nullptr) {
        entries = entries_from_bench_json(root);
    } else {
        throw std::runtime_error(
            "ledger ingest: neither a run report nor a bench JSON document");
    }
    for (LedgerEntry& entry : entries) {
        if (entry.revision.empty()) entry.revision = overrides.revision;
        if (entry.host.empty()) entry.host = overrides.host;
        if (entry.utc.empty()) entry.utc = overrides.utc;
    }
    return entries;
}

}  // namespace glitchmask::obs
