// Shared command-line flags for the bench and example binaries.
//
// Every driver-style binary accepts the same two observability flags:
//   --progress[=seconds]  stderr heartbeat with rate + ETA (default 2 s;
//                         equivalent to GLITCHMASK_PROGRESS=seconds)
//   --report <path>       machine-readable JSON run report
// Parsing exits with usage on anything unrecognised, so binaries that take
// no other arguments stay strict about typos.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "support/telemetry.hpp"

namespace glitchmask {

struct CliOptions {
    bool progress = false;
    double progress_interval = 2.0;
    std::string report_path;
};

/// Parses the shared flags (exits with usage on anything unknown) and
/// activates the heartbeat when --progress was given.
[[nodiscard]] inline CliOptions parse_cli(int argc, char** argv) {
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--progress") {
            cli.progress = true;
        } else if (arg.rfind("--progress=", 0) == 0) {
            cli.progress = true;
            cli.progress_interval = std::atof(arg.c_str() + 11);
        } else if (arg == "--report" && i + 1 < argc) {
            cli.report_path = argv[++i];
        } else if (arg.rfind("--report=", 0) == 0) {
            cli.report_path = arg.substr(9);
        } else {
            std::fprintf(stderr,
                         "unknown option '%s'\n"
                         "usage: %s [--progress[=seconds]] [--report <path>]\n",
                         arg.c_str(), argv[0]);
            std::exit(2);
        }
    }
    if (cli.progress)
        telemetry::set_heartbeat_interval(
            cli.progress_interval > 0.0 ? cli.progress_interval : 2.0);
    return cli;
}

}  // namespace glitchmask
