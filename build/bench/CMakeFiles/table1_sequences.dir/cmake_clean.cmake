file(REMOVE_RECURSE
  "CMakeFiles/table1_sequences.dir/table1_sequences.cpp.o"
  "CMakeFiles/table1_sequences.dir/table1_sequences.cpp.o.d"
  "table1_sequences"
  "table1_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
