// Algebraic Normal Form decomposition of the DES S-boxes (paper Sec. IV-A).
//
// Each 6-to-4 S-box is split into four 4-bit "mini S-boxes" (its rows,
// selected by the outer bits x0 = b5 and x5 = b0) plus a masked 4:1 MUX.
// Every mini S-box is a 4-bit permutation over the middle bits
// x1..x4 = b4..b1, so each coordinate has algebraic degree <= 3 and can
// be written as XOR of: a constant, linear terms x_i, and products of
// degree 2 or 3.  The ANF is computed here with a Moebius transform
// directly from the standard tables -- nothing is hard-coded -- and the
// tests verify the paper's claims (degree <= 3; at most 6 distinct
// degree-2 and 4 degree-3 monomials, all drawn from one fixed set of 10).
//
// Monomial encoding: a 4-bit mask over the mini S-box input, where mask
// bit 3 selects x1 (b4, MSB of the column index) down to mask bit 0
// selecting x4 (b1).  Mask 0 is the constant-1 term.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace glitchmask::des {

/// ANF of one mini S-box: per output bit (index 0 = y1, the MSB of the
/// S-box output nibble), the list of monomial masks with coefficient 1.
struct MiniSboxAnf {
    std::array<std::vector<std::uint8_t>, 4> terms;
};

/// Moebius transform of mini S-box (`box` 0..7, `row` 0..3).
[[nodiscard]] MiniSboxAnf mini_sbox_anf(unsigned box, unsigned row);

/// Evaluates the ANF on a 4-bit column value (bit 3 = x1).
[[nodiscard]] std::uint8_t eval_mini_anf(const MiniSboxAnf& anf,
                                         std::uint8_t column);

/// Highest monomial degree over all four coordinates.
[[nodiscard]] int max_degree(const MiniSboxAnf& anf);

/// The fixed set of 10 nonlinear monomials every mini S-box draws from:
/// all 6 degree-2 and all 4 degree-3 masks, in canonical ascending order.
[[nodiscard]] std::span<const std::uint8_t> all_product_monomials();

/// Index of `mask` within all_product_monomials(); throws if not there.
[[nodiscard]] std::size_t product_monomial_index(std::uint8_t mask);

}  // namespace glitchmask::des
