#!/usr/bin/env bash
# Reference CI recipe: configure + build + test one or more presets.
# With no arguments the default sweep runs the Release preset and then the
# AddressSanitizer preset (heap/stack bugs in the checkpoint and snapshot
# I/O paths would otherwise only surface as flaky corruption); pass
# explicit preset names to run a subset, e.g. `scripts/ci.sh release` or
# `scripts/ci.sh asan tsan`.  Exits nonzero on any build or test failure.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ "${#presets[@]}" -eq 0 ]; then
  presets=(release asan)
fi
for preset in "${presets[@]}"; do
  case "$preset" in
    release|asan|tsan) ;;
    *) echo "usage: scripts/ci.sh [release|asan|tsan ...]" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"

for preset in "${presets[@]}"; do
  echo "==> preset: $preset"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$jobs"
  ctest --preset "$preset" -j "$jobs"
done
