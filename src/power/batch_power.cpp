#include "power/batch_power.hpp"

#include <bit>
#include <stdexcept>

#include "support/bits.hpp"

namespace glitchmask::power {

BatchPowerRecorder::BatchPowerRecorder(const Netlist& nl, PowerConfig config)
    : config_(config), kernels_(kernels::resolve_deposit_kernels()) {
    if (!nl.frozen())
        throw std::runtime_error("BatchPowerRecorder: netlist not frozen");
    weight_ = net_weights(nl, config);
    partner_ = coupling_partners(nl);
}

void BatchPowerRecorder::begin_trace(std::size_t bins) {
    bins_ = bins;
    trace_.assign(bins * sim::kBatchLanes, 0.0);
    lane_toggles_.fill(0);
    trace_toggles_ = 0;
    cur_bin_ = 0;
    bin_end_ = config_.bin_ps;
}

void BatchPowerRecorder::on_toggle(NetId net, sim::TimePs time,
                                   std::uint64_t values, std::uint64_t toggled) {
    const int count = popcount64(toggled);
    trace_toggles_ += static_cast<std::uint64_t>(count);
    total_toggles_ += static_cast<std::uint64_t>(count);

    // Monotonic bin cursor (commit times never decrease in a batch): when
    // the commit lands past the window only the lane counters advance.
    bool in_window = cur_bin_ < bins_;
    while (in_window && time >= bin_end_) {
        bin_end_ += config_.bin_ps;
        in_window = ++cur_bin_ < bins_;
    }
    // Density cutover for the dispatched kernels: the vector forms touch
    // all 64 lanes regardless of mask population, which only pays off on
    // dense masks (clock-edge register commits toggle most lanes at
    // once); glitch-window masks are usually a few bits, where the sparse
    // bit-walk wins.  Either form performs the same per-lane double adds,
    // so the cutover cannot change a result bit.
    constexpr int kDenseCutover = 8;
    const bool dense = count >= kDenseCutover;

    if (!in_window) {
        if (dense) {
            kernels_.count(lane_toggles_.data(), toggled);
        } else {
            for (std::uint64_t rest = toggled; rest != 0; rest &= rest - 1)
                ++lane_toggles_[std::countr_zero(rest)];
        }
        return;
    }
    double* row = trace_.data() + cur_bin_ * sim::kBatchLanes;
    const double weight = weight_[net];
    if (config_.coupling_epsilon != 0.0 && partner_[net] != netlist::kNoNet &&
        engine_ != nullptr) {
        // Lanes where the neighbour sits at the opposite level pay the
        // Miller term, same-level lanes get the shielding discount --
        // the per-lane analogue of the scalar recorder's branch.
        const std::uint64_t opposite = engine_->word(partner_[net]) ^ values;
        if (dense) {
            kernels_.deposit_coupled(row, lane_toggles_.data(), toggled,
                                     opposite, weight,
                                     config_.coupling_epsilon);
            return;
        }
        for (std::uint64_t rest = toggled; rest != 0; rest &= rest - 1) {
            const unsigned lane = static_cast<unsigned>(std::countr_zero(rest));
            ++lane_toggles_[lane];
            row[lane] += weight + (((opposite >> lane) & 1u) != 0
                                       ? config_.coupling_epsilon
                                       : -config_.coupling_epsilon);
        }
    } else {
        if (dense) {
            kernels_.deposit(row, lane_toggles_.data(), toggled, weight);
            return;
        }
        // One walk covers both the per-lane counter and the deposit
        // (glitch-window masks are sparse: schedule groups split lanes by
        // mark time).
        for (std::uint64_t rest = toggled; rest != 0; rest &= rest - 1) {
            const unsigned lane = static_cast<unsigned>(std::countr_zero(rest));
            ++lane_toggles_[lane];
            row[lane] += weight;
        }
    }
}

void BatchPowerRecorder::lane_trace_into(unsigned lane,
                                         std::vector<double>& out) const {
    out.resize(bins_);
    for (std::size_t bin = 0; bin < bins_; ++bin)
        out[bin] = trace_[bin * sim::kBatchLanes + lane];
}

void BatchPowerRecorder::noisy_lane_trace_into(unsigned lane, Xoshiro256& rng,
                                               double sigma,
                                               std::vector<double>& out) const {
    lane_trace_into(lane, out);
    if (sigma > 0.0)
        for (double& sample : out) sample += rng.gaussian(0.0, sigma);
}

}  // namespace glitchmask::power
