#include "support/atomic_file.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "support/campaign_error.hpp"

namespace glitchmask {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
    throw CampaignError(CampaignErrorKind::IoFailure,
                        what + " " + path + ": " + std::strerror(errno));
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable.  Some filesystems refuse to fsync directories; that
/// is not a correctness problem (the rename is still atomic), so errors
/// other than open failure are ignored.
void fsync_parent_dir(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return;
    (void)::fsync(fd);
    ::close(fd);
}

}  // namespace

void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) fail("atomic_write_file: cannot create", tmp);

    std::size_t written = 0;
    while (written < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + written, bytes.size() - written);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            fail("atomic_write_file: write to", tmp);
        }
        written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        fail("atomic_write_file: fsync of", tmp);
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        fail("atomic_write_file: close of", tmp);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        fail("atomic_write_file: rename to", path);
    }
    fsync_parent_dir(path);
}

std::optional<std::vector<std::uint8_t>> read_file_if_exists(
    const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (errno == ENOENT) return std::nullopt;
        fail("read_file_if_exists: cannot open", path);
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t buffer[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buffer, sizeof buffer);
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            fail("read_file_if_exists: read of", path);
        }
        if (n == 0) break;
        bytes.insert(bytes.end(), buffer, buffer + n);
    }
    ::close(fd);
    return bytes;
}

}  // namespace glitchmask
