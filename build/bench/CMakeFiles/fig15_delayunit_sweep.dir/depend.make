# Empty dependencies file for fig15_delayunit_sweep.
# This may be replaced when dependencies are built.
