// Campaign throughput harness: traces/sec and toggle-activity MB/s of the
// trace-collection engine on the DES TVLA workload (the paper's dominant
// cost: Sec. VII campaigns at up to 50M traces), swept over both scaling
// axes -- worker count (1, 2, 4, 8) and lanes per event-queue pass
// (1 = scalar EventSimulator, 64 = bitsliced BatchEventSimulator).
// Emits JSON -- one object, schema documented in EXPERIMENTS.md -- to
// stdout and to BENCH_batch_sim.json so future PRs can track the perf
// trajectory.
//
// Every row replays the identical campaign (counter-based per-trace
// seeding), so the max|t| column doubles as a live equivalence check:
// all rows -- across worker counts AND across the scalar/bitsliced
// engines -- must agree bit-for-bit.
//
// Scale with GLITCHMASK_TRACES (default 192) and GLITCHMASK_NOISE; note
// that meaningful worker speedups need as many physical cores as workers,
// while the lane speedup is per-core.
//
// Flags: --progress[=seconds] (stderr heartbeat) and --report <path>
// (run report of each row; the file is rewritten per row, so it ends up
// describing the last row of the sweep).  Before the sweep the harness
// times telemetry off-vs-on pairs and emits the relative cost as the
// top-level "telemetry_overhead" key, and does the same for per-net
// leakage attribution ("attribution_off_overhead" -- the CI gate holds
// the disabled feature to <= 1% -- and the informational
// "attribution_overhead" for the S-box-scoped probe taps).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "des/masked_des.hpp"
#include "eval/des_experiments.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/telemetry.hpp"

using namespace glitchmask;

namespace {

/// Bytes the simulator touches per committed toggle event: the event
/// record plus the power bin read-modify-write (documented in
/// EXPERIMENTS.md; a fixed constant so MB/s stays comparable across PRs).
constexpr double kBytesPerToggle = 16.0;

struct Series {
    unsigned lanes = 0;
    unsigned workers = 0;
    std::size_t checkpoint_every = 0;  // blocks between snapshots; 0 = off
    bool attribution = false;          // per-net probe taps (scope "sbox")
    double seconds = 0.0;
    double traces_per_sec = 0.0;
    double toggle_mb_per_sec = 0.0;
    double max_abs_t1 = 0.0;
    double speedup = 1.0;  // vs the scalar 1-worker baseline
    std::uint64_t toggles = 0;
    std::uint64_t sim_events = 0;
    std::uint64_t sim_glitches = 0;
    std::uint64_t sim_inertial_cancels = 0;
    std::uint64_t sim_queue_peak = 0;
};

}  // namespace

int main(int argc, char** argv) {
    const bench::CliOptions cli = bench::parse_cli(argc, argv);
    bench::banner("Campaign throughput: DES TVLA, scalar vs 64-lane bitsliced");

    const des::MaskedDesCore core(des::MaskedDesOptions{});
    const std::size_t traces = static_cast<std::size_t>(
        env_int("GLITCHMASK_TRACES", static_cast<std::int64_t>(
                                         bench::scaled_traces(192))));
    const double noise = env_double("GLITCHMASK_NOISE", 1.0);

    // Telemetry cost check: identical 64-lane 1-worker campaigns with the
    // registry off vs on, best of three each (no report path here -- a
    // report would force telemetry on and void the "off" timings).
    auto time_once = [&](bool telemetry_on) {
        telemetry::set_enabled(telemetry_on);
        eval::DesTvlaConfig config;
        config.traces = traces;
        config.noise_sigma = noise;
        config.seed = 7;
        config.workers = 1;
        config.lanes = 64;
        const auto start = std::chrono::steady_clock::now();
        (void)eval::run_des_tvla(core, config);
        const auto stop = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(stop - start).count();
    };
    double best_off = std::numeric_limits<double>::infinity();
    double best_on = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
        best_off = std::min(best_off, time_once(false));
        best_on = std::min(best_on, time_once(true));
    }
    const double telemetry_overhead = best_on / best_off - 1.0;

    // Attribution cost check.  With attribution off no probe is even
    // constructed -- the sink chain is exactly the pre-feature one -- so
    // timing off-vs-off pairs bounds the residual cost of the plumbing
    // (a never-taken branch per trace) plus measurement noise; the CI
    // gate holds that to <= 1%.  The on-cost is informational: it scales
    // with the watched point count (here the S-box scope).
    auto time_attribution = [&](bool attribute) {
        eval::DesTvlaConfig config;
        config.traces = traces;
        config.noise_sigma = noise;
        config.seed = 7;
        config.workers = 1;
        config.lanes = 64;
        config.run.attribution = attribute;
        config.run.attribution_scope = "sbox";
        const auto start = std::chrono::steady_clock::now();
        (void)eval::run_des_tvla(core, config);
        const auto stop = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(stop - start).count();
    };
    double best_plain = std::numeric_limits<double>::infinity();
    double best_attr_off = std::numeric_limits<double>::infinity();
    double best_attr_on = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
        best_plain = std::min(best_plain, time_attribution(false));
        best_attr_off = std::min(best_attr_off, time_attribution(false));
        best_attr_on = std::min(best_attr_on, time_attribution(true));
    }
    const double attribution_off_overhead = best_attr_off / best_plain - 1.0;
    const double attribution_overhead = best_attr_on / best_plain - 1.0;

    // Counters for every sweep row below.
    telemetry::set_enabled(true);

    TablePrinter table({"lanes", "workers", "ckpt", "attr", "seconds",
                        "traces/s", "toggle MB/s", "speedup", "max|t1|"});
    std::vector<Series> series;
    const std::string snapshot_path = "BENCH_checkpoint.gmsnap";

    auto run_row = [&](unsigned lanes, unsigned workers,
                       std::size_t checkpoint_every, bool attribute = false) {
        eval::DesTvlaConfig config;
        config.traces = traces;
        config.noise_sigma = noise;
        config.seed = 7;
        config.workers = workers;
        config.lanes = lanes;
        config.run.report_path = cli.report_path;
        config.run.attribution = attribute;
        config.run.attribution_scope = "sbox";
        if (checkpoint_every > 0) {
            // Fresh file each run: a leftover snapshot would resume (and
            // "finish" instantly), voiding the timing.
            std::remove(snapshot_path.c_str());
            config.run.checkpoint_path = snapshot_path;
            config.run.checkpoint_every = checkpoint_every;
        }

        // Fresh registry per row so Max counters (queue peak) are row-local.
        telemetry::reset();
        const auto start = std::chrono::steady_clock::now();
        const eval::DesTvlaResult r = eval::run_des_tvla(core, config);
        const auto stop = std::chrono::steady_clock::now();
        const telemetry::Snapshot counters = telemetry::snapshot();

        Series s;
        s.lanes = lanes;
        s.workers = workers;
        s.checkpoint_every = checkpoint_every;
        s.attribution = attribute;
        s.seconds = std::chrono::duration<double>(stop - start).count();
        s.traces_per_sec = static_cast<double>(r.traces) / s.seconds;
        s.toggle_mb_per_sec =
            static_cast<double>(r.toggles) * kBytesPerToggle / 1e6 / s.seconds;
        s.max_abs_t1 = r.max_abs_t[1];
        s.toggles = r.toggles;
        s.sim_events = counters.value(telemetry::Counter::kSimEvents);
        s.sim_glitches = counters.value(telemetry::Counter::kSimGlitches);
        s.sim_inertial_cancels =
            counters.value(telemetry::Counter::kSimInertialCancels);
        s.sim_queue_peak = counters.value(telemetry::Counter::kSimQueuePeak);
        s.speedup = series.empty() ? 1.0 : series.front().seconds / s.seconds;
        series.push_back(s);

        table.add_row({std::to_string(lanes), std::to_string(workers),
                       checkpoint_every == 0 ? std::string("off")
                                             : std::to_string(checkpoint_every),
                       attribute ? "on" : "off",
                       TablePrinter::num(s.seconds, 2),
                       TablePrinter::num(s.traces_per_sec, 1),
                       TablePrinter::num(s.toggle_mb_per_sec, 1),
                       TablePrinter::num(s.speedup, 2),
                       TablePrinter::num(s.max_abs_t1, 6)});
        return s;
    };

    for (const unsigned lanes : {1u, 64u})
        for (const unsigned workers : {1u, 2u, 4u, 8u})
            run_row(lanes, workers, /*checkpoint_every=*/0);

    // Crash-safe runtime axis: same campaign with periodic snapshots.  The
    // merge-frontier checkpoint is O(log blocks) accumulators, so even an
    // aggressive cadence must stay within a few percent of the plain run
    // (acceptance bar: <= 5%).
    const Series plain_4w = run_row(64, 4, 0);
    double checkpoint_overhead = 0.0;
    for (const std::size_t every : {16u, 4u, 1u}) {
        const Series s = run_row(64, 4, every);
        checkpoint_overhead =
            std::max(checkpoint_overhead, s.seconds / plain_4w.seconds - 1.0);
    }
    // Attribution axis: same campaign with S-box probe taps, both
    // engines.  Rides the determinism check below -- the probe must not
    // perturb the power statistics by a single bit.
    run_row(64, 4, /*checkpoint_every=*/0, /*attribute=*/true);
    run_row(1, 4, /*checkpoint_every=*/0, /*attribute=*/true);
    std::remove(snapshot_path.c_str());
    table.print();

    bool deterministic = true;
    for (const Series& s : series)
        deterministic &= (s.max_abs_t1 == series.front().max_abs_t1) &&
                         (s.toggles == series.front().toggles);
    std::printf("\nEquivalence across workers, engines and checkpointing: %s\n",
                deterministic ? "bit-identical" : "MISMATCH (bug!)");
    std::printf("Checkpoint overhead (worst cadence, 64 lanes / 4 workers): "
                "%.2f%%\n",
                checkpoint_overhead * 100.0);
    std::printf("Telemetry overhead (64 lanes / 1 worker, best of 3): "
                "%.2f%%\n",
                telemetry_overhead * 100.0);
    std::printf("Attribution-off overhead (must be noise): %.2f%%   "
                "attribution-on cost (sbox scope): %.2f%%\n",
                attribution_off_overhead * 100.0, attribution_overhead * 100.0);

    // The headline number: one core, 64 lanes vs 1 lane.
    double batch_speedup_1w = 0.0;
    for (const Series& s : series)
        if (s.lanes == 64 && s.workers == 1)
            batch_speedup_1w = series.front().seconds / s.seconds;
    std::printf("Bitsliced speedup at 1 worker: %.2fx\n", batch_speedup_1w);

    std::string json = "{\n  \"workload\": \"des_ff_tvla\",\n";
    json += "  \"traces\": " + std::to_string(traces) + ",\n";
    json += "  \"samples\": " + std::to_string(core.total_cycles()) + ",\n";
    json += "  \"noise_sigma\": " + TablePrinter::num(noise, 3) + ",\n";
    json += "  \"bytes_per_toggle\": " + TablePrinter::num(kBytesPerToggle, 0) +
            ",\n";
    json += std::string("  \"deterministic\": ") +
            (deterministic ? "true" : "false") + ",\n";
    json += "  \"batch_speedup_1worker\": " +
            TablePrinter::num(batch_speedup_1w, 3) + ",\n";
    json += "  \"checkpoint_overhead\": " +
            TablePrinter::num(checkpoint_overhead, 4) + ",\n";
    json += "  \"telemetry_overhead\": " +
            TablePrinter::num(telemetry_overhead, 4) + ",\n";
    json += "  \"attribution_off_overhead\": " +
            TablePrinter::num(attribution_off_overhead, 4) + ",\n";
    json += "  \"attribution_overhead\": " +
            TablePrinter::num(attribution_overhead, 4) + ",\n";
    json += "  \"series\": [\n";
    for (std::size_t i = 0; i < series.size(); ++i) {
        const Series& s = series[i];
        json += "    {\"lanes\": " + std::to_string(s.lanes) +
                ", \"workers\": " + std::to_string(s.workers) +
                ", \"checkpoint_every\": " + std::to_string(s.checkpoint_every) +
                std::string(", \"attribution\": ") +
                (s.attribution ? "true" : "false") +
                ", \"seconds\": " + TablePrinter::num(s.seconds, 4) +
                ", \"traces_per_sec\": " + TablePrinter::num(s.traces_per_sec, 2) +
                ", \"toggle_mb_per_sec\": " +
                TablePrinter::num(s.toggle_mb_per_sec, 2) +
                ", \"toggles\": " + std::to_string(s.toggles) +
                ", \"sim_events\": " + std::to_string(s.sim_events) +
                ", \"sim_glitches\": " + std::to_string(s.sim_glitches) +
                ", \"sim_inertial_cancels\": " +
                std::to_string(s.sim_inertial_cancels) +
                ", \"sim_queue_peak\": " + std::to_string(s.sim_queue_peak) +
                ", \"speedup\": " + TablePrinter::num(s.speedup, 3) +
                ", \"max_abs_t1\": " + TablePrinter::num(s.max_abs_t1, 9) + "}";
        json += (i + 1 < series.size()) ? ",\n" : "\n";
    }
    json += "  ]\n}\n";

    std::fputs(json.c_str(), stdout);
    if (std::FILE* f = std::fopen("BENCH_batch_sim.json", "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("JSON: BENCH_batch_sim.json\n");
    }
    return deterministic ? 0 : 1;
}
