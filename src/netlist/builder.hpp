// Bus- and structure-level construction helpers on top of the raw
// Netlist API: multi-bit buses, share-wise XOR planes, register banks,
// XOR-reduction trees, and the DelayUnit chains of the secAND2-PD design
// (paper Sec. V: a DelayUnit is a chain of LUTs used as buffers; signals
// are delayed by stacking DelayUnits).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace glitchmask::netlist {

/// A multi-bit signal; index 0 is bit 0 (LSB) unless stated otherwise.
using Bus = std::vector<NetId>;

/// `width` fresh primary inputs named `<name>[i]`.
[[nodiscard]] Bus input_bus(Netlist& nl, std::string_view name, std::size_t width);

/// Share-wise XOR of two equal-width buses.
[[nodiscard]] Bus xor_bus(Netlist& nl, const Bus& a, const Bus& b);

/// Balanced XOR-reduction tree over `nets` (returns const0 for empty).
[[nodiscard]] NetId xor_reduce(Netlist& nl, std::span<const NetId> nets);

/// One DFF per bus bit, all in the given enable/reset groups.
[[nodiscard]] Bus register_bank(Netlist& nl, const Bus& data,
                                CtrlGroup enable = kAlwaysEnabled,
                                CtrlGroup reset = kAlwaysEnabled,
                                std::string_view name = {});

/// Floating DFF bank (connect later with connect_flop).
[[nodiscard]] Bus register_bank_floating(Netlist& nl, std::size_t width,
                                         CtrlGroup enable = kAlwaysEnabled,
                                         CtrlGroup reset = kAlwaysEnabled,
                                         std::string_view name = {});

/// Result of building a delay chain: the delayed net plus every
/// intermediate chain net (used to register coupling pairs between
/// physically adjacent chains).
struct DelayChain {
    NetId out = kNoNet;
    std::vector<NetId> stages;  // includes `out` as the last element
};

/// Delays `net` by `units` DelayUnits of `luts_per_unit` chained
/// DelayBuf cells each (paper Fig. 10).  `units == 0` returns `net`
/// unchanged with an empty stage list.
[[nodiscard]] DelayChain delay_units(Netlist& nl, NetId net, unsigned units,
                                     unsigned luts_per_unit,
                                     std::string_view name = {});

/// Registers coupling pairs between corresponding stages of two adjacent
/// delay chains (paper Sec. VII-C: long parallel delay paths couple).
void couple_chains(Netlist& nl, const DelayChain& a, const DelayChain& b);

}  // namespace glitchmask::netlist
