#include "eval/campaign.hpp"

#include "core/sharing.hpp"

namespace glitchmask::eval {

std::vector<double> collect_trace(
    sim::ClockedSim& sim, power::PowerRecorder& recorder, std::size_t cycles,
    double sigma, Xoshiro256& noise_rng,
    const std::function<void(sim::ClockedSim&)>& drive) {
    sim.restart();
    recorder.begin_trace(cycles);
    drive(sim);
    return recorder.noisy_trace(noise_rng, sigma);
}

SequenceLeakResult run_sequence_experiment(
    const core::InputSequence& sequence,
    const SequenceExperimentConfig& config) {
    core::RegisteredSecand2 circuit =
        core::build_registered_secand2(config.replicas);

    sim::DelayConfig delay_config = sim::DelayConfig::spartan6();
    delay_config.seed = config.placement_seed;
    const sim::DelayModel dm(circuit.nl, delay_config);
    sim::ClockConfig clock;
    power::PowerConfig power_config;
    power_config.bin_ps = clock.period_ps;

    sim::ClockedSim simulator(circuit.nl, dm, clock);
    power::PowerRecorder recorder(circuit.nl, power_config);
    simulator.engine().set_sink(&recorder);

    constexpr std::size_t kCycles = 6;  // inputs + 4 sequence slots + settle
    leakage::TvlaCampaign campaign(kCycles, config.max_test_order);
    Xoshiro256 rng(config.seed);
    Xoshiro256 noise_rng(mix64(config.seed, 0x6e6f697365ULL));

    for (std::size_t n = 0; n < config.traces; ++n) {
        const bool fixed = rng.bit();
        const bool x = fixed ? true : rng.bit();
        const bool y = fixed ? true : rng.bit();
        const core::MaskedBit mx = core::mask_bit(x, rng);
        const core::MaskedBit my = core::mask_bit(y, rng);
        const std::array<bool, 4> share_value{mx.s0, mx.s1, my.s0, my.s1};

        const std::vector<double> trace = collect_trace(
            simulator, recorder, kCycles, config.noise_sigma, noise_rng,
            [&](sim::ClockedSim& s) {
                // Cycle 0: share values appear on the primary inputs; all
                // input registers stay disabled (reset-to-0 state).
                for (std::size_t i = 0; i < 4; ++i)
                    s.set_input(circuit.in[i], share_value[i]);
                s.step();
                // Cycles 1..4: sample one share per cycle in `sequence`.
                for (const core::ShareId slot : sequence) {
                    s.set_enable(
                        circuit.enable[static_cast<std::size_t>(slot)], true);
                    s.step();
                }
                s.step();  // settle
            });
        campaign.add_trace(fixed, trace);
    }

    SequenceLeakResult result;
    result.sequence = sequence;
    result.max_abs_t1 = campaign.max_abs_t(1, &result.argmax_cycle);
    result.max_abs_t2 = campaign.max_abs_t(2);
    result.leaks_first_order = result.max_abs_t1 > leakage::kTvlaThreshold;
    result.expected_to_leak = core::sequence_expected_to_leak(sequence);
    return result;
}

std::vector<SequenceLeakResult> run_all_sequences(
    const SequenceExperimentConfig& config) {
    std::vector<SequenceLeakResult> results;
    for (const core::InputSequence& sequence : core::all_input_sequences())
        results.push_back(run_sequence_experiment(sequence, config));
    return results;
}

}  // namespace glitchmask::eval
