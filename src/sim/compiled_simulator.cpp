#include "sim/compiled_simulator.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <mutex>
#include <queue>
#include <stdexcept>

namespace glitchmask::sim {

namespace {

constexpr std::uint8_t kOutputPin = 0xFF;
constexpr std::uint8_t kSourcePin = 0xFE;
constexpr TimePs kNoEvent = ~TimePs{0};

// ----- lane words --------------------------------------------------------

template <unsigned W>
struct LW {
    std::uint64_t w[W];
};

template <unsigned W>
[[nodiscard]] inline bool lw_none(const LW<W>& x) noexcept {
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < W; ++i) acc |= x.w[i];
    return acc == 0;
}

template <unsigned W>
[[nodiscard]] inline std::uint64_t lw_popcount(const LW<W>& x) noexcept {
    std::uint64_t n = 0;
    for (unsigned i = 0; i < W; ++i)
        n += static_cast<std::uint64_t>(std::popcount(x.w[i]));
    return n;
}

template <unsigned W>
[[nodiscard]] inline LW<W> lw_and(const LW<W>& a, const LW<W>& b) noexcept {
    LW<W> r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = a.w[i] & b.w[i];
    return r;
}

template <unsigned W>
[[nodiscard]] inline LW<W> lw_andnot(const LW<W>& a, const LW<W>& b) noexcept {
    LW<W> r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = a.w[i] & ~b.w[i];
    return r;
}

template <unsigned W>
[[nodiscard]] inline LW<W> lw_xor(const LW<W>& a, const LW<W>& b) noexcept {
    LW<W> r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = a.w[i] ^ b.w[i];
    return r;
}

template <unsigned W>
inline void lw_or_eq(LW<W>& a, const LW<W>& b) noexcept {
    for (unsigned i = 0; i < W; ++i) a.w[i] |= b.w[i];
}

template <unsigned W>
inline void lw_andnot_eq(LW<W>& a, const LW<W>& b) noexcept {
    for (unsigned i = 0; i < W; ++i) a.w[i] &= ~b.w[i];
}

/// dst = (dst & ~mask) | (val & mask)
template <unsigned W>
inline void lw_merge(LW<W>& dst, const LW<W>& val, const LW<W>& mask) noexcept {
    for (unsigned i = 0; i < W; ++i)
        dst.w[i] = (dst.w[i] & ~mask.w[i]) | (val.w[i] & mask.w[i]);
}

template <unsigned W>
[[nodiscard]] inline LW<W> lw_splat(std::uint64_t v) noexcept {
    LW<W> r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = v;
    return r;
}

/// Wide evaluation with the kind switch hoisted out of the word loop
/// (netlist::eval_cell_word would re-dispatch per 64-lane word).  `p`
/// points at the cell's 3 pin words; bit-for-bit eval_cell_word per word.
template <unsigned W>
[[nodiscard]] inline LW<W> eval_cell_lw(netlist::CellKind kind,
                                        const LW<W>* p) noexcept {
    using netlist::CellKind;
    LW<W> r;
    switch (kind) {
        case CellKind::Input:
        case CellKind::Buf:
        case CellKind::DelayBuf:
        case CellKind::Dff:
            r = p[0];
            break;
        case CellKind::Const0:
            r = LW<W>{};
            break;
        case CellKind::Const1:
            r = lw_splat<W>(~std::uint64_t{0});
            break;
        case CellKind::Inv:
            for (unsigned i = 0; i < W; ++i) r.w[i] = ~p[0].w[i];
            break;
        case CellKind::And2:
            for (unsigned i = 0; i < W; ++i) r.w[i] = p[0].w[i] & p[1].w[i];
            break;
        case CellKind::Nand2:
            for (unsigned i = 0; i < W; ++i) r.w[i] = ~(p[0].w[i] & p[1].w[i]);
            break;
        case CellKind::Or2:
            for (unsigned i = 0; i < W; ++i) r.w[i] = p[0].w[i] | p[1].w[i];
            break;
        case CellKind::Nor2:
            for (unsigned i = 0; i < W; ++i) r.w[i] = ~(p[0].w[i] | p[1].w[i]);
            break;
        case CellKind::Xor2:
            for (unsigned i = 0; i < W; ++i) r.w[i] = p[0].w[i] ^ p[1].w[i];
            break;
        case CellKind::Xnor2:
            for (unsigned i = 0; i < W; ++i) r.w[i] = ~(p[0].w[i] ^ p[1].w[i]);
            break;
        case CellKind::Orn2:
            for (unsigned i = 0; i < W; ++i) r.w[i] = p[0].w[i] | ~p[1].w[i];
            break;
        case CellKind::SecAnd3:
            for (unsigned i = 0; i < W; ++i)
                r.w[i] = (p[0].w[i] & p[1].w[i]) ^ (p[0].w[i] | ~p[2].w[i]);
            break;
        case CellKind::Mux2:
            for (unsigned i = 0; i < W; ++i)
                r.w[i] = (p[2].w[i] & p[1].w[i]) | (~p[2].w[i] & p[0].w[i]);
            break;
        default:
            r = LW<W>{};
            break;
    }
    return r;
}

// ----- program fingerprint ----------------------------------------------

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv_bytes(std::uint64_t h, const void* data,
                               std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
    return h;
}

template <class T>
inline std::uint64_t fnv_value(std::uint64_t h, const T& v) noexcept {
    return fnv_bytes(h, &v, sizeof(v));
}

std::uint64_t program_key(const netlist::Netlist& nl, const DelayModel& dm,
                          const SimOptions& options) {
    std::uint64_t h = kFnvOffset;
    h = fnv_value(h, nl.size());
    for (CellId id = 0; id < nl.size(); ++id) {
        const netlist::Cell& cell = nl.cell(id);
        h = fnv_value(h, cell.kind);
        h = fnv_value(h, cell.enable);
        h = fnv_value(h, cell.reset);
        h = fnv_value(h, cell.in[0]);
        h = fnv_value(h, cell.in[1]);
        h = fnv_value(h, cell.in[2]);
        h = fnv_value(h, dm.gate_delay(id));
        h = fnv_value(h, dm.wire_delay(id, 0));
        h = fnv_value(h, dm.wire_delay(id, 1));
        h = fnv_value(h, dm.wire_delay(id, 2));
    }
    h = fnv_value(h, dm.clk_to_q());
    h = fnv_value(h, options.inertial_filtering);
    h = fnv_value(h, options.inertial_factor);
    return h;
}

std::shared_ptr<const CompiledProgram> build_program(const netlist::Netlist& nl,
                                                     const DelayModel& dm,
                                                     const SimOptions& options,
                                                     std::uint64_t key) {
    auto prog = std::make_shared<CompiledProgram>();
    CompiledProgram& p = *prog;
    const std::size_t n = nl.size();
    p.key = key;
    p.n_cells = n;
    p.kind.resize(n);
    p.pins.resize(n);
    p.in.assign(n * 3, netlist::kNoNet);
    p.gate_ps.resize(n);
    p.inertial_window.resize(n);
    p.settle_one.assign(n, 0);
    p.fanout_begin.assign(n + 1, 0);
    p.clk_to_q = dm.clk_to_q();
    p.max_ctrl_group = nl.max_ctrl_group();
    p.inertial_filtering = options.inertial_filtering;

    std::uint32_t max_gate = 0;
    std::uint32_t max_wire = 0;
    p.pin_base.assign(n + 1, 0);
    for (CellId id = 0; id < n; ++id) {
        const netlist::Cell& cell = nl.cell(id);
        p.kind[id] = cell.kind;
        const unsigned pins = netlist::pin_count(cell.kind);
        p.pins[id] = static_cast<std::uint8_t>(pins);
        p.pin_base[id + 1] = p.pin_base[id] + pins;
        for (unsigned q = 0; q < pins; ++q) p.in[id * 3 + q] = cell.in[q];
        p.gate_ps[id] = dm.gate_delay(id);
        max_gate = std::max(max_gate, p.gate_ps[id]);
        // Same rounding expression as the event engines so the inertial
        // windows agree bit-for-bit.
        p.inertial_window[id] = static_cast<TimePs>(
            options.inertial_factor * static_cast<double>(dm.gate_delay(id)));
        if (cell.kind == netlist::CellKind::Dff)
            p.flops.push_back({id, cell.enable, cell.reset});

        // All-sources-low steady state in creation order (topological for
        // combinational cells) -- identical to the event engines' settle.
        std::uint8_t one = 0;
        switch (cell.kind) {
            case netlist::CellKind::Input:
            case netlist::CellKind::Dff:
            case netlist::CellKind::Const0:
                one = 0;
                break;
            case netlist::CellKind::Const1:
                one = 1;
                break;
            default: {
                std::uint64_t a = 0, b = 0, c = 0;
                if (pins > 0) a = p.settle_one[cell.in[0]] ? kAllLanes : 0;
                if (pins > 1) b = p.settle_one[cell.in[1]] ? kAllLanes : 0;
                if (pins > 2) c = p.settle_one[cell.in[2]] ? kAllLanes : 0;
                one = netlist::eval_cell_word(cell.kind, a, b, c) != 0 ? 1 : 0;
                break;
            }
        }
        p.settle_one[id] = one;
    }

    for (CellId id = 0; id < n; ++id)
        p.fanout_begin[id + 1] =
            p.fanout_begin[id] +
            static_cast<std::uint32_t>(nl.fanout(id).size());
    p.fanout.resize(p.fanout_begin[n]);
    for (CellId id = 0; id < n; ++id) {
        std::uint32_t out = p.fanout_begin[id];
        for (const netlist::Sink& sink : nl.fanout(id)) {
            const std::uint32_t wire = dm.wire_delay(sink.cell, sink.pin);
            max_wire = std::max(max_wire, wire);
            p.fanout[out++] = {sink.cell, sink.pin, wire};
        }
    }

    // Ring horizon: the longest push offset past `now` is one wire hop
    // plus one gate delay plus the clk-to-Q launch, with generous slack
    // for the monotonic +1 bump chains.  Events past the horizon (never
    // produced by the clocked drivers) fall back to the overflow heap, so
    // correctness does not depend on this value.
    const std::uint64_t span = static_cast<std::uint64_t>(max_wire) +
                               2ull * max_gate + p.clk_to_q + 1024u;
    p.ring_size = std::bit_ceil(std::max<std::uint64_t>(span, 4096u));
    return prog;
}

struct ProgramCache {
    std::mutex mutex;
    std::vector<std::shared_ptr<const CompiledProgram>> entries;  // MRU first
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

ProgramCache& program_cache() {
    static ProgramCache cache;
    return cache;
}

constexpr std::size_t kProgramCacheCapacity = 8;

}  // namespace

std::shared_ptr<const CompiledProgram> compile_netlist(const netlist::Netlist& nl,
                                                       const DelayModel& dm,
                                                       SimOptions options) {
    if (!nl.frozen())
        throw std::invalid_argument("compile_netlist: netlist not frozen");
    const std::uint64_t key = program_key(nl, dm, options);
    ProgramCache& cache = program_cache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    for (std::size_t i = 0; i < cache.entries.size(); ++i) {
        if (cache.entries[i]->key == key) {
            auto hit = cache.entries[i];
            cache.entries.erase(cache.entries.begin() +
                                static_cast<std::ptrdiff_t>(i));
            cache.entries.insert(cache.entries.begin(), hit);
            ++cache.hits;
            return hit;
        }
    }
    ++cache.misses;
    auto prog = build_program(nl, dm, options, key);
    cache.entries.insert(cache.entries.begin(), prog);
    if (cache.entries.size() > kProgramCacheCapacity)
        cache.entries.resize(kProgramCacheCapacity);
    return prog;
}

CompiledCacheStats compiled_program_cache_stats() {
    ProgramCache& cache = program_cache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return CompiledCacheStats{cache.hits, cache.misses, cache.entries.size()};
}

void clear_compiled_program_cache() {
    ProgramCache& cache = program_cache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    cache.entries.clear();
    cache.hits = 0;
    cache.misses = 0;
}

// ----- the wide-lane engine ----------------------------------------------

namespace {

template <unsigned W>
class CompiledEngine final : public CompiledEngineBase {
public:
    explicit CompiledEngine(std::shared_ptr<const CompiledProgram> program)
        : program_(std::move(program)), p_(program_.get()) {
        const std::size_t n = p_->n_cells;
        out_val_.resize(n);
        pin_val_.resize(p_->pin_base[n]);
        last_sched_out_.resize(n);
        pending_.resize(n);
        marks_.resize(n);
        window_stamp_.resize(n, 0);
        window_toggled_.resize(n);
        ring_mask_ = p_->ring_size - 1;
        buckets_.resize(p_->ring_size);
        occ_.assign(p_->ring_size / 64, 0);
        for (unsigned c = 0; c < W; ++c) views_[c].bind(this, c);
        initialize();
    }

    [[nodiscard]] unsigned chunks() const noexcept override { return W; }

    void initialize() override {
        for (std::size_t slot = 0; slot < buckets_.size(); ++slot)
            buckets_[slot].clear();
        std::fill(occ_.begin(), occ_.end(), 0);
        overflow_ = {};
        wheel_count_ = 0;
        live_ = 0;
        now_ = 0;
        seq_ = 0;
        window_epoch_ = 1;
        std::fill(window_stamp_.begin(), window_stamp_.end(), 0);
        for (auto& w : window_toggled_) w = LW<W>{};
        for (auto& pending : pending_) pending.clear();
        for (auto& marks : marks_) marks.clear();
        const std::size_t n = p_->n_cells;
        for (auto& pv : pin_val_) pv = LW<W>{};
        for (CellId id = 0; id < n; ++id) {
            const LW<W> v = lw_splat<W>(p_->settle_one[id] ? kAllLanes : 0);
            out_val_[id] = v;
            last_sched_out_[id] = v;
        }
        for (CellId id = 0; id < n; ++id) {
            const unsigned pins = p_->pins[id];
            for (unsigned q = 0; q < pins; ++q)
                pin_val_[p_->pin_base[id] + q] = out_val_[p_->in[id * 3 + q]];
        }
    }

    void set_sink(unsigned chunk, BatchToggleSink* sink) noexcept override {
        sinks_[chunk] = sink;
    }

    [[nodiscard]] const BatchWordView* chunk_view(
        unsigned chunk) const noexcept override {
        return &views_[chunk];
    }

    void drive_chunk(NetId source, unsigned chunk, std::uint64_t values,
                     std::uint64_t lanes, TimePs time) override {
        if (lanes == 0) return;
        check_drive_time(time);
        Pending p{};
        p.time = time;
        p.seq = seq_;
        p.lanes.w[chunk] = lanes;
        p.value.w[chunk] = values;
        pending_[source].push_back(p);
        push_commit(source, kSourcePin, time);
    }

    void drive_all(NetId source, bool value, TimePs time) override {
        check_drive_time(time);
        Pending p{};
        p.time = time;
        p.seq = seq_;
        p.lanes = lw_splat<W>(kAllLanes);
        p.value = lw_splat<W>(value ? kAllLanes : 0);
        pending_[source].push_back(p);
        push_commit(source, kSourcePin, time);
    }

    void sample_flops(const std::uint8_t* enable, const std::uint8_t* reset,
                      TimePs launch) override {
        // Same per-edge discipline as BatchClockedSim: reset beats enable,
        // the D pin is the wire-delayed view, and only changed lanes are
        // launched (flop order == drive order == seq order).
        for (const CompiledProgram::FlopInfo& flop : p_->flops) {
            const LW<W>& cur = out_val_[flop.cell];
            LW<W> q;
            if (flop.reset != netlist::kAlwaysEnabled && reset[flop.reset] != 0)
                q = LW<W>{};
            else if (enable[flop.enable] != 0)
                q = pin_val_[p_->pin_base[flop.cell]];
            else
                q = cur;
            const LW<W> changed = lw_xor(q, cur);
            if (lw_none(changed)) continue;
            pending_[flop.cell].push_back(Pending{launch, seq_, changed, q});
            push_commit(flop.cell, kSourcePin, launch);
        }
    }

    void run_until(TimePs t_end) override {
        while (step_one_time(t_end)) {
        }
        now_ = t_end;
    }

    TimePs run_to_quiescence() override {
        while (step_one_time(kNoEvent)) {
        }
        return now_;
    }

    [[nodiscard]] std::uint64_t word(NetId net,
                                     unsigned chunk) const noexcept override {
        return out_val_[net].w[chunk];
    }

    [[nodiscard]] std::uint64_t pin_word(CellId cell, unsigned pin,
                                         unsigned chunk) const noexcept override {
        return pin_val_[p_->pin_base[cell] + pin].w[chunk];
    }

    [[nodiscard]] TimePs now() const noexcept override { return now_; }

    void begin_activity_window() noexcept override { ++window_epoch_; }

    [[nodiscard]] telemetry::SimStats stats() const noexcept override {
        return telemetry::SimStats{processed_, toggles_, glitches_,
                                   inertial_cancels_, queue_peak_};
    }

private:
    // Events are the unit of queue traffic, so they carry the minimum:
    // a pin event needs only the toggle mask (per-edge FIFO delivery
    // means flipping exactly those lanes reproduces the old merge), and
    // commit events (output or source) carry nothing -- their lanes and
    // target value wait in pending_[cell], keyed by seq.  That keeps an
    // Event at one lane word instead of two (88 B vs 152 B at W=8),
    // which is most of the wheel's memory traffic.
    struct Event {
        TimePs time;
        std::uint64_t seq;
        CellId cell;
        std::uint8_t pin;  // 0xFF = output commit, 0xFE = source commit
        LW<W> mask;        // pin event: lanes to flip; commits: unused
    };
    struct Pending {
        TimePs time;
        std::uint64_t seq;
        LW<W> lanes;
        LW<W> value;
    };
    struct Mark {
        TimePs when;
        LW<W> lanes;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            return (a.time != b.time) ? a.time > b.time : a.seq > b.seq;
        }
    };

    class ChunkView final : public BatchWordView {
    public:
        void bind(const CompiledEngine* engine, unsigned chunk) noexcept {
            engine_ = engine;
            chunk_ = chunk;
        }
        [[nodiscard]] std::uint64_t word(NetId net) const noexcept override {
            return engine_->out_val_[net].w[chunk_];
        }

    private:
        const CompiledEngine* engine_ = nullptr;
        unsigned chunk_ = 0;
    };

    void check_drive_time(TimePs time) const {
        if (time < now_)
            throw std::invalid_argument(
                "CompiledEngine: drive in the past (the time-slot ring "
                "replays forward only)");
    }

    // ----- time-slot ring ------------------------------------------------

    /// Commit event: lanes/value live in pending_[cell] under this seq,
    /// so the event's mask stays unwritten (and unread).
    void push_commit(CellId cell, std::uint8_t pin, TimePs time) {
        Event ev;
        ev.time = time;
        ev.seq = seq_++;
        ev.cell = cell;
        ev.pin = pin;
        push_event(std::move(ev));
    }

    void push_event(Event&& ev) {
        ++live_;
        if (live_ > queue_peak_) queue_peak_ = live_;
        if (ev.time - now_ <= ring_mask_) {
            const std::size_t slot = ev.time & ring_mask_;
            occ_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
            buckets_[slot].push_back(std::move(ev));
            ++wheel_count_;
        } else {
            overflow_.push(std::move(ev));
        }
    }

    /// Earliest occupied slot time >= now_ (valid only when the wheel is
    /// non-empty): word-wise circular scan of the occupancy bitmap.
    [[nodiscard]] TimePs next_wheel_time() const noexcept {
        const std::size_t i0 = now_ & ring_mask_;
        const std::size_t nwords = occ_.size();
        std::size_t word_idx = i0 >> 6;
        std::uint64_t w = occ_[word_idx] & (~std::uint64_t{0} << (i0 & 63));
        for (std::size_t k = 0; k <= nwords; ++k) {
            if (w != 0) {
                const std::size_t slot =
                    (word_idx << 6) +
                    static_cast<std::size_t>(std::countr_zero(w));
                return now_ + ((slot - i0) & ring_mask_);
            }
            word_idx = word_idx + 1 == nwords ? 0 : word_idx + 1;
            w = occ_[word_idx];
        }
        return kNoEvent;  // unreachable while wheel_count_ > 0
    }

    void migrate_overflow() {
        while (!overflow_.empty() && overflow_.top().time - now_ <= ring_mask_) {
            Event ev = overflow_.top();
            overflow_.pop();
            const std::size_t slot = ev.time & ring_mask_;
            auto& bucket = buckets_[slot];
            // Keep the bucket seq-sorted: entries appended while this
            // event sat in the overflow heap carry larger seq numbers.
            std::size_t pos = bucket.size();
            while (pos > 0 && bucket[pos - 1].seq > ev.seq) --pos;
            bucket.insert(bucket.begin() + static_cast<std::ptrdiff_t>(pos),
                          std::move(ev));
            occ_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
            ++wheel_count_;
        }
    }

    /// Processes every event at the next event time if it is < t_end.
    bool step_one_time(TimePs t_end) {
        TimePs t = kNoEvent;
        if (wheel_count_ != 0) t = next_wheel_time();
        if (!overflow_.empty() && overflow_.top().time < t)
            t = overflow_.top().time;
        if (t >= t_end) return false;
        now_ = t;
        migrate_overflow();
        const std::size_t slot = t & ring_mask_;
        auto& bucket = buckets_[slot];
        // Index loop, size re-read each pass: same-time pushes during the
        // drain append here and must run in this pass (FIFO == seq order,
        // exactly the heap's (time, seq) order).
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            const Event ev = bucket[i];  // copy: pushes may reallocate
            ++processed_;
            --wheel_count_;
            --live_;
            if (ev.pin >= kSourcePin)
                commit_output(ev);
            else
                update_pin(ev);
        }
        bucket.clear();
        occ_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
        return true;
    }

    // ----- ported event-engine semantics (see sim/batch_simulator.cpp) --

    void schedule_group(CellId cell, const LW<W>& value, const LW<W>& lanes,
                        TimePs when) {
        LW<W> cancelled{};
        if (p_->inertial_filtering) {
            LW<W> to_check = lanes;
            auto& pending = pending_[cell];
            for (auto it = pending.rbegin();
                 it != pending.rend() && !lw_none(to_check); ++it) {
                const LW<W> m = lw_and(to_check, it->lanes);
                if (lw_none(m)) continue;
                if (when >= it->time &&
                    when - it->time < p_->inertial_window[cell]) {
                    lw_andnot_eq(it->lanes, m);
                    lw_or_eq(cancelled, m);
                }
                lw_andnot_eq(to_check, m);
            }
            inertial_cancels_ += lw_popcount(cancelled);
        }

        lw_merge(last_sched_out_[cell], value, lanes);
        auto& marks = marks_[cell];
        for (Mark& mark : marks) lw_andnot_eq(mark.lanes, lanes);
        bool merged = false;
        for (Mark& mark : marks) {
            if (mark.when == when) {
                lw_or_eq(mark.lanes, lanes);
                merged = true;
                break;
            }
        }
        if (!merged) marks.push_back(Mark{when, lanes});

        const LW<W> survivors = lw_andnot(lanes, cancelled);
        if (lw_none(survivors)) return;
        pending_[cell].push_back(Pending{when, seq_, survivors, value});
        push_commit(cell, kOutputPin, when);
    }

    void schedule_output(CellId cell, const LW<W>& value, const LW<W>& changed,
                         TimePs at) {
        auto& marks = marks_[cell];
        std::erase_if(marks, [at](const Mark& mark) {
            return mark.when < at || lw_none(mark.lanes);
        });

        LW<W> covered{};
        for (const Mark& mark : marks) lw_or_eq(covered, mark.lanes);
        covered = lw_and(covered, changed);

        const LW<W> unmarked = lw_andnot(changed, covered);

        if (lw_none(covered)) {
            schedule_group(cell, value, unmarked, at == 0 ? 1 : at);
            return;
        }

        struct Group {
            TimePs when;
            LW<W> lanes;
        };
        Group groups[8];
        std::size_t n_groups = 0;
        std::vector<Group> spill;
        LW<W> left = covered;
        while (!lw_none(left)) {
            TimePs newest = 0;
            for (const Mark& mark : marks)
                if (!lw_none(lw_and(mark.lanes, left)) && mark.when >= newest)
                    newest = mark.when;
            LW<W> lanes_at_newest{};
            for (const Mark& mark : marks)
                if (mark.when == newest)
                    lw_or_eq(lanes_at_newest, lw_and(mark.lanes, left));
            if (n_groups < 8)
                groups[n_groups++] = Group{newest + 1, lanes_at_newest};
            else
                spill.push_back(Group{newest + 1, lanes_at_newest});
            lw_andnot_eq(left, lanes_at_newest);
        }
        for (std::size_t i = 0; i < n_groups; ++i)
            schedule_group(cell, value, groups[i].lanes, groups[i].when);
        for (const Group& group : spill)
            schedule_group(cell, value, group.lanes, group.when);
        if (!lw_none(unmarked))
            schedule_group(cell, value, unmarked, at == 0 ? 1 : at);
    }

    void commit_output(const Event& ev) {
        auto& pending = pending_[ev.cell];
        LW<W> lanes{};
        LW<W> value{};
        for (auto it = pending.begin(); it != pending.end(); ++it) {
            if (it->seq == ev.seq) {
                lanes = it->lanes;
                value = it->value;
                pending.erase(it);
                break;
            }
        }
        const LW<W> toggled = lw_and(lanes, lw_xor(out_val_[ev.cell], value));
        if (lw_none(toggled)) return;
        toggles_ += lw_popcount(toggled);
        if (window_stamp_[ev.cell] == window_epoch_) {
            glitches_ += lw_popcount(lw_and(toggled, window_toggled_[ev.cell]));
            lw_or_eq(window_toggled_[ev.cell], toggled);
        } else {
            window_stamp_[ev.cell] = window_epoch_;
            window_toggled_[ev.cell] = toggled;
        }
        lw_merge(out_val_[ev.cell], value, toggled);
        const LW<W>& out = out_val_[ev.cell];
        for (unsigned c = 0; c < W; ++c)
            if (toggled.w[c] != 0 && sinks_[c] != nullptr)
                sinks_[c]->on_toggle(ev.cell, ev.time, out.w[c], toggled.w[c]);
        const std::uint32_t fb = p_->fanout_begin[ev.cell];
        const std::uint32_t fe = p_->fanout_begin[ev.cell + 1];
        for (std::uint32_t f = fb; f < fe; ++f) {
            const CompiledProgram::FanoutEdge& edge = p_->fanout[f];
            Event next;
            next.time = ev.time + edge.wire_ps;
            next.seq = seq_++;
            next.cell = edge.cell;
            next.pin = edge.pin;
            next.mask = toggled;
            push_event(std::move(next));
        }
    }

    void update_pin(const Event& ev) {
        // Per-edge FIFO delivery (fixed wire delay + seq tiebreak) means
        // the slot's masked bits still hold the source's pre-commit
        // value, so flipping exactly the toggled lanes reproduces the
        // merge of the committed value.
        const std::uint32_t base = p_->pin_base[ev.cell];
        LW<W>& slot = pin_val_[base + ev.pin];
        for (unsigned i = 0; i < W; ++i) slot.w[i] ^= ev.mask.w[i];
        const netlist::CellKind kind = p_->kind[ev.cell];
        if (kind == netlist::CellKind::Dff) return;

        const LW<W> value = eval_cell_lw<W>(kind, &pin_val_[base]);
        const LW<W> changed = lw_xor(value, last_sched_out_[ev.cell]);
        if (lw_none(changed)) return;
        schedule_output(ev.cell, value, changed,
                        ev.time + p_->gate_ps[ev.cell]);
    }

    std::shared_ptr<const CompiledProgram> program_;
    const CompiledProgram* p_;

    std::vector<LW<W>> out_val_;
    std::vector<LW<W>> pin_val_;
    std::vector<LW<W>> last_sched_out_;
    std::vector<std::vector<Pending>> pending_;
    std::vector<std::vector<Mark>> marks_;

    std::vector<std::vector<Event>> buckets_;
    std::vector<std::uint64_t> occ_;
    std::size_t ring_mask_ = 0;
    std::size_t wheel_count_ = 0;
    std::size_t live_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> overflow_;

    BatchToggleSink* sinks_[W] = {};
    ChunkView views_[W];

    std::uint64_t seq_ = 0;
    TimePs now_ = 0;
    std::size_t processed_ = 0;

    std::uint64_t toggles_ = 0;
    std::uint64_t glitches_ = 0;
    std::uint64_t inertial_cancels_ = 0;
    std::uint64_t queue_peak_ = 0;
    std::uint32_t window_epoch_ = 1;
    std::vector<std::uint32_t> window_stamp_;
    std::vector<LW<W>> window_toggled_;
};

}  // namespace

std::unique_ptr<CompiledEngineBase> make_compiled_engine(
    std::shared_ptr<const CompiledProgram> program, unsigned chunks) {
    switch (chunks) {
        case 1:
            return std::make_unique<CompiledEngine<1>>(std::move(program));
        case 2:
            return std::make_unique<CompiledEngine<2>>(std::move(program));
        case 4:
            return std::make_unique<CompiledEngine<4>>(std::move(program));
        case 8:
            return std::make_unique<CompiledEngine<8>>(std::move(program));
        default:
            throw std::invalid_argument(
                "make_compiled_engine: chunks must be 1/2/4/8");
    }
}

// ----- CompiledClockedSim ------------------------------------------------

CompiledClockedSim::CompiledClockedSim(const netlist::Netlist& nl,
                                       const DelayModel& dm, unsigned lanes,
                                       ClockConfig clock,
                                       CouplingConfig coupling,
                                       SimOptions options)
    : nl_(nl), clock_(clock) {
    if (coupling.timing_enabled)
        throw std::invalid_argument(
            "CompiledClockedSim: timing coupling makes delays data-dependent; "
            "lanes cannot share a compiled schedule -- use the scalar "
            "EventSimulator");
    if (lanes != 64 && lanes != 128 && lanes != 256 && lanes != 512)
        throw std::invalid_argument(
            "CompiledClockedSim: lanes must be 64, 128, 256 or 512");
    program_ = compile_netlist(nl, dm, options);
    engine_ = make_compiled_engine(program_, lanes / 64u);
    enable_.assign(nl.max_ctrl_group() + 1u, 0);
    reset_.assign(nl.max_ctrl_group() + 1u, 0);
    enable_[netlist::kAlwaysEnabled] = 1;
}

void CompiledClockedSim::set_enable(netlist::CtrlGroup group, bool enabled) {
    if (group == netlist::kAlwaysEnabled)
        throw std::runtime_error("CompiledClockedSim: group 0 is always enabled");
    enable_.at(group) = enabled ? 1 : 0;
}

void CompiledClockedSim::set_reset(netlist::CtrlGroup group, bool asserted) {
    if (group == netlist::kAlwaysEnabled)
        throw std::runtime_error("CompiledClockedSim: group 0 cannot be reset");
    reset_.at(group) = asserted ? 1 : 0;
}

void CompiledClockedSim::set_input_word(NetId input, unsigned chunk,
                                        std::uint64_t values) {
    if (nl_.cell(input).kind != netlist::CellKind::Input)
        throw std::runtime_error(
            "CompiledClockedSim::set_input_word: not a primary input");
    if (chunk >= chunks())
        throw std::invalid_argument(
            "CompiledClockedSim::set_input_word: chunk out of range");
    pending_.push_back({input, static_cast<std::uint8_t>(chunk), values});
}

void CompiledClockedSim::set_input(NetId input, bool value) {
    if (nl_.cell(input).kind != netlist::CellKind::Input)
        throw std::runtime_error(
            "CompiledClockedSim::set_input: not a primary input");
    pending_.push_back({input, 0xFF, value ? kAllLanes : 0});
}

void CompiledClockedSim::step(std::size_t cycles) {
    for (std::size_t n = 0; n < cycles; ++n) {
        const TimePs edge = static_cast<TimePs>(cycle_) * clock_.period_ps;
        engine_->begin_activity_window();
        const TimePs launch = edge + program_->clk_to_q;
        // Flop updates first, pending inputs second: the same seq order
        // as BatchClockedSim::step, so every lane sees the same source
        // events as its scalar run.
        engine_->sample_flops(enable_.data(), reset_.data(), launch);
        for (const PendingInput& input : pending_) {
            if (input.chunk == 0xFF)
                engine_->drive_all(input.net, input.values != 0, launch);
            else
                engine_->drive_chunk(input.net, input.chunk, input.values,
                                     kAllLanes, launch);
        }
        pending_.clear();
        engine_->run_until(edge + clock_.period_ps);
        ++cycle_;
    }
}

void CompiledClockedSim::restart() {
    engine_->initialize();
    enable_.assign(enable_.size(), 0);
    reset_.assign(reset_.size(), 0);
    enable_[netlist::kAlwaysEnabled] = 1;
    pending_.clear();
    cycle_ = 0;
}

}  // namespace glitchmask::sim
