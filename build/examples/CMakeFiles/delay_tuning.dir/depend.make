# Empty dependencies file for delay_tuning.
# This may be replaced when dependencies are built.
