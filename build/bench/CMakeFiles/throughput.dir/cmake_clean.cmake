file(REMOVE_RECURSE
  "CMakeFiles/throughput.dir/throughput.cpp.o"
  "CMakeFiles/throughput.dir/throughput.cpp.o.d"
  "throughput"
  "throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
