#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace glitchmask {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
}

std::string TablePrinter::str() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << cells[c];
            if (c + 1 < cells.size())
                out << std::string(width[c] - cells[c].size() + 2, ' ');
        }
        out << '\n';
    };
    emit(header_);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        out << std::string(width[c], '-');
        if (c + 1 < header_.size()) out << "  ";
    }
    out << '\n';
    for (const auto& row : rows_) emit(row);
    return out.str();
}

void TablePrinter::print() const { std::fputs(str().c_str(), stdout); }

std::string TablePrinter::num(double value, int precision) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
    return buffer;
}

std::string TablePrinter::integer(long long value) {
    return std::to_string(value);
}

}  // namespace glitchmask
