// Deterministic sharded trace-collection engine.
//
// A campaign of T traces is cut into fixed-size blocks of consecutive
// trace indices.  Blocks are claimed dynamically by the pool's workers
// (work stealing balances the load -- simulator replicas warm up at
// different speeds), each worker owns a private simulator replica built
// from the shared netlist/delay-model, and every block folds its traces
// into a private accumulator.  The block accumulators are then merged in
// a fixed binary tree over block indices.
//
// Determinism is the design center, achieved by two rules:
//   1. Counter-based RNG: trace n draws every random decision (class
//      choice, mask shares, refresh bits, measurement noise) from streams
//      seeded as mix64(mix64(seed, stream_tag), n) -- no generator state
//      is ever shared between traces, so trace n's stimulus is a pure
//      function of (seed, n) no matter which worker runs it.
//   2. Fixed reduction shape: floating-point accumulation is not
//      associative, so bit-identical results require the *merge structure*
//      (block size and tree), not just the trace values, to be independent
//      of the worker count.  Block size is a config constant, never
//      derived from the pool size.
// Together these make a campaign at any worker count -- including 1 --
// produce bit-identical statistics.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace glitchmask::eval {

/// Resolves a config's `workers` field: 0 = GLITCHMASK_WORKERS env /
/// hardware_concurrency (ThreadPool::default_worker_count()).
[[nodiscard]] unsigned resolve_workers(unsigned configured);

/// Resolves a config's `lanes` field (traces simulated per event-queue
/// pass): 1 = scalar EventSimulator, 64 = bitsliced BatchEventSimulator.
/// 0 = auto: GLITCHMASK_LANES env, default 64.  Timing coupling makes
/// delays data-dependent, which breaks the shared-schedule premise of the
/// batch engine, so `timing_coupling` forces the scalar path regardless
/// of the configured value.  Throws on values outside {0, 1, 64}.
[[nodiscard]] unsigned resolve_lanes(unsigned configured, bool timing_coupling);

/// Stream tags feeding mix64(mix64(seed, tag), trace_index): one derived
/// generator per purpose, so stimulus and noise draws never interleave.
inline constexpr std::uint64_t kStimulusStream = 0x7374696d756cULL;  // "stimul"
inline constexpr std::uint64_t kNoiseStream = 0x6e6f697365ULL;       // "noise"

/// The per-trace generator for one purpose; trace_index is the global
/// trace counter, identical in serial and parallel schedules.
[[nodiscard]] inline Xoshiro256 trace_rng(std::uint64_t seed,
                                          std::uint64_t stream_tag,
                                          std::uint64_t trace_index) {
    return Xoshiro256(mix64(mix64(seed, stream_tag), trace_index));
}

/// Fixed decomposition of a trace budget into blocks of consecutive
/// indices.  The block size is part of the campaign's identity: changing
/// it changes the merge tree and therefore the low bits of the result.
struct ShardPlan {
    std::size_t traces = 0;
    std::size_t block_size = 64;

    [[nodiscard]] std::size_t blocks() const noexcept {
        return block_size == 0 ? 0 : (traces + block_size - 1) / block_size;
    }
    [[nodiscard]] std::size_t block_begin(std::size_t block) const noexcept {
        return block * block_size;
    }
    [[nodiscard]] std::size_t block_end(std::size_t block) const noexcept {
        const std::size_t end = (block + 1) * block_size;
        return end < traces ? end : traces;
    }
};

/// In-place pairwise reduction of block accumulators in index order:
/// round 1 merges (0,1)(2,3)..., round 2 merges (0,2)(4,6)..., etc.  The
/// tree depends only on the number of blocks.  Returns the root.
template <class Acc, class Merge>
[[nodiscard]] Acc merge_tree(std::vector<std::optional<Acc>>& blocks,
                             Merge&& merge) {
    for (std::size_t step = 1; step < blocks.size(); step *= 2)
        for (std::size_t i = 0; i + step < blocks.size(); i += 2 * step)
            merge(*blocks[i], *blocks[i + step]);
    return std::move(*blocks.front());
}

/// Runs `plan.traces` traces on `pool` and returns the merged accumulator.
///
///   make_worker() -> owning handle H of one simulator replica; called
///     lazily, at most once per pool worker, on that worker's thread.
///     Return a std::unique_ptr (or any dereference-free movable state):
///     the handle is stored once and never relocated afterwards, so
///     internal pointers (e.g. a PowerRecorder registered as toggle sink)
///     stay valid.
///   make_acc() -> empty block accumulator Acc.
///   run_trace(H& worker, std::size_t trace_index, Acc& acc) collects one
///     trace into the block accumulator.
///   merge(Acc& into, const Acc& from) folds two block accumulators.
template <class MakeWorker, class MakeAcc, class RunTrace, class Merge>
[[nodiscard]] auto run_sharded(ThreadPool& pool, const ShardPlan& plan,
                               MakeWorker&& make_worker, MakeAcc&& make_acc,
                               RunTrace&& run_trace, Merge&& merge)
    -> decltype(make_acc());

/// Block-granular variant of run_sharded for collectors that process a
/// whole block at once -- the bitsliced batch path simulates a block as
/// lane groups of 64 consecutive trace indices, so it needs the [begin,
/// end) range rather than one callback per trace:
///
///   run_block(H& worker, std::size_t begin, std::size_t end, Acc& acc)
///     collects traces [begin, end) into the block accumulator.
///
/// Sharding, replica reuse and the merge tree are identical to
/// run_sharded, so the per-block accumulation order -- and therefore the
/// merged floating-point result -- only depends on what run_block feeds
/// the accumulator.
template <class MakeWorker, class MakeAcc, class RunBlock, class Merge>
[[nodiscard]] auto run_sharded_blocks(ThreadPool& pool, const ShardPlan& plan,
                                      MakeWorker&& make_worker,
                                      MakeAcc&& make_acc, RunBlock&& run_block,
                                      Merge&& merge) -> decltype(make_acc()) {
    using Acc = decltype(make_acc());
    using Worker = decltype(make_worker());

    const std::size_t n_blocks = plan.blocks();
    if (n_blocks == 0) return make_acc();

    // One lazily-built replica slot per pool worker.  Each slot is only
    // ever touched by the pool thread with that index, so no locking.
    std::vector<std::optional<Worker>> replicas(pool.size());
    std::vector<std::optional<Acc>> blocks(n_blocks);

    TaskGroup group(pool);
    for (std::size_t b = 0; b < n_blocks; ++b) {
        group.run([&, b] {
            const int id = pool.current_worker();
            std::optional<Worker>& slot = replicas[static_cast<std::size_t>(id)];
            if (!slot.has_value()) slot.emplace(make_worker());

            Acc acc = make_acc();
            run_block(*slot, plan.block_begin(b), plan.block_end(b), acc);
            blocks[b].emplace(std::move(acc));
        });
    }
    group.wait();

    return merge_tree(blocks, merge);
}

template <class MakeWorker, class MakeAcc, class RunTrace, class Merge>
[[nodiscard]] auto run_sharded(ThreadPool& pool, const ShardPlan& plan,
                               MakeWorker&& make_worker, MakeAcc&& make_acc,
                               RunTrace&& run_trace, Merge&& merge)
    -> decltype(make_acc()) {
    using Worker = decltype(make_worker());
    using Acc = decltype(make_acc());
    return run_sharded_blocks(
        pool, plan, std::forward<MakeWorker>(make_worker),
        std::forward<MakeAcc>(make_acc),
        [&run_trace](Worker& worker, std::size_t begin, std::size_t end,
                     Acc& acc) {
            for (std::size_t n = begin; n < end; ++n) run_trace(worker, n, acc);
        },
        std::forward<Merge>(merge));
}

}  // namespace glitchmask::eval
