// ASCII table printer for the bench harness.  Every bench prints the
// paper's table/figure as aligned rows on stdout (plus a CSV dump); this
// keeps that formatting in one place.
#pragma once

#include <string>
#include <vector>

namespace glitchmask {

class TablePrinter {
public:
    explicit TablePrinter(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    /// Renders the table with a rule under the header, e.g.
    ///   Version       GE     Cycles
    ///   -----------  ------  ------
    ///   secAND2-FF   15180   7
    [[nodiscard]] std::string str() const;

    /// str() to stdout.
    void print() const;

    /// Convenience number formatting used by the benches.
    [[nodiscard]] static std::string num(double value, int precision = 2);
    [[nodiscard]] static std::string integer(long long value);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace glitchmask
