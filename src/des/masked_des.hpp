// First-order masked DES encryption cores (paper Sec. IV, Figs. 8b / 9b).
//
// Both cores implement the full round-based DES datapath on two Boolean
// shares, including the masked key schedule (C/D rotation registers per
// share -- the key is freshly masked before every operation), with the
// substitution layer built from the masked S-boxes of des/masked_sbox.hpp.
// All 8 S-boxes share the same 14 fresh random bits per round, exactly as
// the paper's reference implementation recycles them.
//
//   * secAND2-FF core: 7 cycles per round, 115 cycles per block
//     (1 load + 16 x 7 + readout margin), matching the paper.
//     Round schedule (enable groups):
//       c0 g_state+g_key | c1 g_sbox_in (+ gadget reset) | c2 g_layer1 |
//       c3 g_layer2+g_sync | c4 g_mux2 | c5 g_out | c6 settle.
//   * secAND2-PD core: 2 cycles per round, ~34 cycles per block.  The
//     S-box output feeds the S-box input register *directly* (through the
//     combinational round feedback), the state register updates in
//     parallel, and the key registers rotate at the same edge -- the
//     paper's Fig. 9b timing.  Arrival order inside a cycle is enforced
//     purely by DelayUnit chains.
//
// The control FSM lives in C++ (encrypt() below) and drives the enable/
// reset groups plus two unmasked control inputs (load select, shift-by-one
// select); neither carries key- or data-dependent information.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/sharing.hpp"
#include "des/des_reference.hpp"
#include "des/masked_sbox.hpp"
#include "netlist/builder.hpp"
#include "sim/batch_simulator.hpp"
#include "sim/delay_model.hpp"

namespace glitchmask::des {

using core::MaskedWord;
using netlist::Bus;

/// FF and PD are the paper's two designs; DOM is the baseline the paper
/// compares against ([17]), built from DOM-indep gadgets.
enum class CoreFlavor { FF, PD, DOM };

struct MaskedDesOptions {
    CoreFlavor flavor = CoreFlavor::FF;
    /// PD only: LUTs per DelayUnit (paper's optimum: 10).
    unsigned delayunit_luts = 10;
    /// PD only: register adjacent delay chains as coupled.
    bool couple_adjacent = true;
    /// Recycle the 14 fresh bits across all 8 S-boxes (the paper's
    /// reference choice); false = 14 dedicated bits per S-box (112 per
    /// round, the paper's non-recycled variant).
    bool recycle_randomness = true;
};

class MaskedDesCore {
public:
    explicit MaskedDesCore(const MaskedDesOptions& options = {});

    [[nodiscard]] const Netlist& nl() const noexcept { return *nl_; }
    [[nodiscard]] const MaskedDesOptions& options() const noexcept {
        return options_;
    }

    [[nodiscard]] unsigned cycles_per_round() const noexcept {
        return options_.flavor == CoreFlavor::PD ? 2u : 7u;
    }
    /// Cycles from the first stimulus edge to a readable ciphertext
    /// (= the number of power samples per trace): 113 for the FF core
    /// (1 stimulus + 16 x 7), 34 for the PD core (1 + 16 x 2 + settle).
    /// The static form answers without building the (expensive) core --
    /// the sample count depends only on the flavor.
    [[nodiscard]] static constexpr unsigned total_cycles_for(
        CoreFlavor flavor) noexcept {
        return flavor == CoreFlavor::PD ? 1u + 16u * 2u + 1u : 1u + 16u * 7u;
    }
    [[nodiscard]] unsigned total_cycles() const noexcept {
        return total_cycles_for(options_.flavor);
    }

    /// Recommended clock period [ps] (PD needs room for its delay chains:
    /// up to 6 DelayUnits plus routing on the mini S-box AND stage).
    [[nodiscard]] sim::TimePs recommended_period() const noexcept {
        return options_.flavor == CoreFlavor::PD ? 90000u : 20000u;
    }

    /// Fresh random bits consumed per round.
    [[nodiscard]] unsigned random_bits_per_round() const noexcept {
        return static_cast<unsigned>(rand_.size());
    }

    // ----- I/O nets (MSB-first buses: bus[0] = DES bit 1) ----------------
    [[nodiscard]] const Bus& pt_s0() const noexcept { return pt_s0_; }
    [[nodiscard]] const Bus& pt_s1() const noexcept { return pt_s1_; }
    [[nodiscard]] const Bus& key_s0() const noexcept { return key_s0_; }
    [[nodiscard]] const Bus& key_s1() const noexcept { return key_s1_; }
    [[nodiscard]] const Bus& rand() const noexcept { return rand_; }
    [[nodiscard]] const Bus& ct_s0() const noexcept { return ct_s0_; }
    [[nodiscard]] const Bus& ct_s1() const noexcept { return ct_s1_; }

    /// Runs one masked encryption on any simulator with the ClockedSim
    /// drive API (works for sim::ClockedSim and sim::ZeroDelaySim).  The
    /// caller restarts the simulator first.  `prng` supplies the 14 round
    /// refresh bits; nullptr = PRNG off (all refresh bits zero).
    template <class Sim>
    MaskedWord encrypt(Sim& sim, const MaskedWord& pt, const MaskedWord& key,
                       Xoshiro256* prng) const {
        set_word(sim, pt_s0_, pt.s0);
        set_word(sim, pt_s1_, pt.s1);
        set_word(sim, key_s0_, key.s0);
        set_word(sim, key_s1_, key.s1);
        set_rand(sim, prng);
        sim.set_input(load_sel_, true);
        sim.set_input(shift_one_, true);  // round 1 shifts by 1
        sim.step();                       // stimulus lands

        switch (options_.flavor) {
            case CoreFlavor::FF: run_rounds_ff(sim, prng); break;
            case CoreFlavor::PD: run_rounds_pd(sim, prng); break;
            case CoreFlavor::DOM: run_rounds_dom(sim, prng); break;
        }

        MaskedWord ct;
        ct.s0 = read_word(sim, ct_s0_);
        ct.s1 = read_word(sim, ct_s1_);
        return ct;
    }

    /// Bitsliced counterpart of encrypt(): one event-queue pass carries
    /// `pt.size()` (<= 64) independent encryptions, lane l running the
    /// stimulus of pt[l]/key[l].  `prngs[l]` supplies lane l's 14 refresh
    /// bits per round in the same draw order as the scalar path (pass the
    /// generator whose state continues from that lane's mask draws); an
    /// empty span is "PRNG off" in every lane.  Unused lanes see all-zero
    /// stimulus.  Each lane's waveform -- and therefore its ciphertext and
    /// power trace -- is bit-identical to a scalar encrypt() of that
    /// lane's inputs.
    std::array<MaskedWord, sim::kBatchLanes> encrypt_batch(
        sim::BatchClockedSim& sim, std::span<const MaskedWord> pt,
        std::span<const MaskedWord> key, std::span<Xoshiro256> prngs) const;

    /// Wide-lane counterpart of encrypt_batch() for any chunked sim
    /// (eval::EventLaneSim, sim::CompiledClockedSim): one pass carries up
    /// to sim.chunks()*64 encryptions, trace t in lane t%64 of chunk
    /// t/64.  The stimulus lands in the identical per-net order as
    /// encrypt_batch() -- for a one-chunk sim the event path's call
    /// sequence (and results) are unchanged -- and the per-lane refresh
    /// draws stay net-outer / lane-inner across all chunks, so every
    /// trace is bit-identical to a scalar encrypt() of its inputs.
    template <class ChunkedSim>
    std::vector<MaskedWord> encrypt_batch_chunks(
        ChunkedSim& sim, std::span<const MaskedWord> pt,
        std::span<const MaskedWord> key, std::span<Xoshiro256> prngs) const {
        set_share_chunks(sim, pt_s0_, pt, false);
        set_share_chunks(sim, pt_s1_, pt, true);
        set_share_chunks(sim, key_s0_, key, false);
        set_share_chunks(sim, key_s1_, key, true);
        set_rand(sim, prngs);
        sim.set_input(load_sel_, true);
        sim.set_input(shift_one_, true);  // round 1 shifts by 1
        sim.step();                       // stimulus lands

        switch (options_.flavor) {
            case CoreFlavor::FF: run_rounds_ff(sim, prngs); break;
            case CoreFlavor::PD: run_rounds_pd(sim, prngs); break;
            case CoreFlavor::DOM: run_rounds_dom(sim, prngs); break;
        }

        std::vector<MaskedWord> ct(pt.size());
        for (std::size_t t = 0; t < pt.size(); ++t) {
            ct[t].s0 = read_word_chunk(sim, ct_s0_, t);
            ct[t].s1 = read_word_chunk(sim, ct_s1_, t);
        }
        return ct;
    }

    /// Convenience: masks plaintext/key with `masks` (or zero masks when
    /// nullptr, the "PRNG off" mode), encrypts, and unmasks.
    template <class Sim>
    std::uint64_t encrypt_value(Sim& sim, std::uint64_t pt, std::uint64_t key,
                                Xoshiro256* masks) const {
        const MaskedWord mpt = masks != nullptr ? core::mask_word(pt, 64, *masks)
                                                : MaskedWord{0, pt};
        const MaskedWord mkey = masks != nullptr
                                    ? core::mask_word(key, 64, *masks)
                                    : MaskedWord{0, key};
        return encrypt(sim, mpt, mkey, masks).value();
    }

private:
    void build();
    void build_datapath();

    template <class Sim>
    static void set_word(Sim& sim, const Bus& bus, std::uint64_t value) {
        for (std::size_t i = 0; i < bus.size(); ++i)
            sim.set_input(bus[i], ((value >> (bus.size() - 1 - i)) & 1u) != 0);
    }
    template <class Sim>
    static std::uint64_t read_word(const Sim& sim, const Bus& bus) {
        std::uint64_t value = 0;
        for (std::size_t i = 0; i < bus.size(); ++i)
            if (sim.value(bus[i])) value |= std::uint64_t{1}
                                            << (bus.size() - 1 - i);
        return value;
    }
    template <class Sim>
    void set_rand(Sim& sim, Xoshiro256* prng) const {
        for (const netlist::NetId net : rand_)
            sim.set_input(net, prng != nullptr && prng->bit());
    }
    /// Per-lane refresh randomness: net-outer / lane-inner, so each lane
    /// draws its bits in exactly the scalar set_rand order.
    void set_rand(sim::BatchClockedSim& sim, std::span<Xoshiro256> prngs) const {
        for (const netlist::NetId net : rand_) {
            std::uint64_t word = 0;
            for (std::size_t lane = 0; lane < prngs.size(); ++lane)
                if (prngs[lane].bit()) word |= std::uint64_t{1} << lane;
            sim.set_input_word(net, word);
        }
    }
    /// Chunked-sim refresh randomness; same net-outer / lane-inner draw
    /// order across all chunks.  (BatchClockedSim takes the non-template
    /// overload above by exact match.)
    template <class Sim>
    void set_rand(Sim& sim, std::span<Xoshiro256> prngs) const {
        for (const netlist::NetId net : rand_) {
            for (unsigned c = 0; c < sim.chunks(); ++c) {
                std::uint64_t word = 0;
                const std::size_t base = std::size_t{c} * 64u;
                for (std::size_t lane = base;
                     lane < base + 64u && lane < prngs.size(); ++lane)
                    if (prngs[lane].bit())
                        word |= std::uint64_t{1} << (lane - base);
                sim.set_input_word(net, c, word);
            }
        }
    }
    /// Packs `words`' share (s1 when share1) bit bus.size()-1-i into
    /// bus[i], trace t in lane t%64 of chunk t/64; unused lanes get zero.
    template <class Sim>
    void set_share_chunks(Sim& sim, const Bus& bus,
                          std::span<const MaskedWord> words,
                          bool share1) const {
        for (std::size_t i = 0; i < bus.size(); ++i) {
            const unsigned shift = static_cast<unsigned>(bus.size() - 1 - i);
            for (unsigned c = 0; c < sim.chunks(); ++c) {
                std::uint64_t word = 0;
                for (std::size_t lane = 0; lane < 64; ++lane) {
                    const std::size_t t = std::size_t{c} * 64u + lane;
                    if (t >= words.size()) break;
                    const std::uint64_t v =
                        share1 ? words[t].s1 : words[t].s0;
                    word |= ((v >> shift) & 1u) << lane;
                }
                sim.set_input_word(bus[i], c, word);
            }
        }
    }
    template <class Sim>
    static std::uint64_t read_word_chunk(const Sim& sim, const Bus& bus,
                                         std::size_t trace) {
        std::uint64_t value = 0;
        for (std::size_t i = 0; i < bus.size(); ++i)
            if ((sim.word(bus[i], static_cast<unsigned>(trace / 64u)) >>
                 (trace % 64u)) &
                1u)
                value |= std::uint64_t{1} << (bus.size() - 1 - i);
        return value;
    }
    template <class Sim>
    void pulse(Sim& sim, std::initializer_list<netlist::CtrlGroup> groups,
               netlist::CtrlGroup reset_group = 0) const {
        for (const auto group : groups) sim.set_enable(group, true);
        if (reset_group != 0) sim.set_reset(reset_group, true);
        sim.step();
        for (const auto group : groups) sim.set_enable(group, false);
        if (reset_group != 0) sim.set_reset(reset_group, false);
    }

    /// Queues the control/random stimulus for round `round` so it lands
    /// one edge before that round's first sampling edge.  `Rand` is either
    /// Xoshiro256* (scalar) or std::span<Xoshiro256> (one generator per
    /// lane) -- set_rand overloads on it.
    template <class Sim, class Rand>
    void prepare_round(Sim& sim, unsigned round, Rand prng) const {
        sim.set_input(shift_one_, key_shifts()[round] == 1);
        sim.set_input(load_sel_, round == 0);
        set_rand(sim, prng);
    }

    template <class Sim, class Rand>
    void run_rounds_ff(Sim& sim, Rand prng) const {
        // Round 0's controls landed at the stimulus edge (encrypt()).
        // The y1-delay FFs reset strictly *before* fresh operands can
        // reach them (reset racing new data would let an x share arrive
        // while both old y shares are visible -- the Table I hazard), and
        // the resets themselves are staggered: late-layer flops (triples,
        // MUX stage 2) clear at c5, so that the pair/mini transitions
        // caused by the early-layer reset at c0 meet already-cleared
        // downstream y1 inputs.
        for (unsigned round = 0; round < kRounds; ++round) {
            pulse(sim, {kStateG, kKeyG}, kRstEarly);  // c0 (load on round 0)
            pulse(sim, {kSboxInG});                   // c1
            pulse(sim, {kLayer1G});                   // c2
            pulse(sim, {kLayer2G, kSyncG});           // c3
            pulse(sim, {kMux2G});                     // c4
            pulse(sim, {kOutG}, kRstLate);            // c5
            if (round + 1 < kRounds) prepare_round(sim, round + 1, prng);
            sim.step();                               // c6 settle
        }
    }

    template <class Sim, class Rand>
    void run_rounds_dom(Sim& sim, Rand prng) const {
        // DOM is glitch-robust by its register stages; no resets, no
        // arrival-order choreography -- just one enable per layer.
        for (unsigned round = 0; round < kRounds; ++round) {
            pulse(sim, {kStateG, kKeyG});  // c0 (load on round 0)
            pulse(sim, {kSboxInG});        // c1
            pulse(sim, {kLayer1G});        // c2: pair + select DOM stages
            pulse(sim, {kLayer2G});        // c3: triple DOM stages
            pulse(sim, {kMux2G});          // c4: stage-2 DOM stages
            pulse(sim, {kOutG});           // c5
            if (round + 1 < kRounds) prepare_round(sim, round + 1, prng);
            sim.step();                    // c6 settle
        }
    }

    template <class Sim, class Rand>
    void run_rounds_pd(Sim& sim, Rand prng) const {
        for (unsigned round = 0; round < kRounds; ++round) {
            pulse(sim, {kStateG, kKeyG, kSboxInG});  // even edge
            if (round + 1 < kRounds) prepare_round(sim, round + 1, prng);
            pulse(sim, {kMidG});                     // odd edge; controls land
        }
        sim.step();  // final stage-2/3 settle before readout
    }

    // Enable/reset groups (shared by both flavours where applicable).
    static constexpr netlist::CtrlGroup kStateG = 1;
    static constexpr netlist::CtrlGroup kKeyG = 2;
    static constexpr netlist::CtrlGroup kSboxInG = 3;
    static constexpr netlist::CtrlGroup kLayer1G = 4;
    static constexpr netlist::CtrlGroup kLayer2G = 5;
    static constexpr netlist::CtrlGroup kSyncG = 6;
    static constexpr netlist::CtrlGroup kMux2G = 7;
    static constexpr netlist::CtrlGroup kOutG = 8;
    static constexpr netlist::CtrlGroup kRstEarly = 9;
    static constexpr netlist::CtrlGroup kRstLate = 10;
    static constexpr netlist::CtrlGroup kMidG = 4;  // PD: g_mid

    MaskedDesOptions options_;
    std::unique_ptr<Netlist> nl_;
    Bus pt_s0_, pt_s1_, key_s0_, key_s1_, rand_;
    Bus ct_s0_, ct_s1_;
    netlist::NetId load_sel_ = netlist::kNoNet;
    netlist::NetId shift_one_ = netlist::kNoNet;
};

}  // namespace glitchmask::des
