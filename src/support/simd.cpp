#include "support/simd.hpp"

#include <string>

#include "support/env.hpp"
#include "support/log.hpp"

namespace glitchmask::support {

namespace {

SimdLevel detect_level() {
    SimdLevel cpu = SimdLevel::kScalar;
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2")) cpu = SimdLevel::kAvx2;
    if (__builtin_cpu_supports("avx512f")) cpu = SimdLevel::kAvx512;
#endif
    const std::string req = env_string("GLITCHMASK_SIMD", "auto");
    SimdLevel capped = cpu;
    if (req == "off" || req == "scalar") {
        capped = SimdLevel::kScalar;
    } else if (req == "avx2") {
        capped = cpu < SimdLevel::kAvx2 ? cpu : SimdLevel::kAvx2;
    } else if (req == "avx512" || req == "auto") {
        capped = cpu;
    } else {
        log::warn("unknown GLITCHMASK_SIMD value '" + req + "', using auto");
    }
    return capped;
}

}  // namespace

SimdLevel active_simd_level() noexcept {
    static const SimdLevel level = detect_level();
    return level;
}

const char* simd_level_name(SimdLevel level) noexcept {
    switch (level) {
        case SimdLevel::kAvx512:
            return "avx512";
        case SimdLevel::kAvx2:
            return "avx2";
        default:
            return "scalar";
    }
}

}  // namespace glitchmask::support
