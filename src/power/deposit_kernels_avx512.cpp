// AVX-512F deposit kernels: 8 lanes per vector, native 8-bit masks taken
// straight from the toggle word.  Masked adds leave untouched lanes'
// memory unwritten at element granularity, so bit-identity with the
// scalar walk is structural.  Compiled with -mavx512f -ffp-contract=off.
#include "power/deposit_kernels.hpp"

#if defined(GLITCHMASK_HAVE_AVX512)

#include <immintrin.h>

namespace glitchmask::power::kernels {

void deposit_avx512(double* row, std::uint64_t* lane_toggles,
                    std::uint64_t toggled, double weight) {
    const __m512d w = _mm512_set1_pd(weight);
    const __m512i one = _mm512_set1_epi64(1);
    for (unsigned g = 0; g < 8; ++g) {
        const __mmask8 m = static_cast<__mmask8>(toggled >> (8 * g));
        if (m == 0) continue;
        __m512i cnt = _mm512_loadu_si512(lane_toggles + 8 * g);
        cnt = _mm512_mask_add_epi64(cnt, m, cnt, one);
        _mm512_storeu_si512(lane_toggles + 8 * g, cnt);
        __m512d v = _mm512_loadu_pd(row + 8 * g);
        v = _mm512_mask_add_pd(v, m, v, w);
        _mm512_storeu_pd(row + 8 * g, v);
    }
}

void deposit_coupled_avx512(double* row, std::uint64_t* lane_toggles,
                            std::uint64_t toggled, std::uint64_t opposite,
                            double weight, double eps) {
    const __m512d w = _mm512_set1_pd(weight);
    const __m512d pos = _mm512_set1_pd(eps);
    const __m512d neg = _mm512_set1_pd(-eps);
    const __m512i one = _mm512_set1_epi64(1);
    for (unsigned g = 0; g < 8; ++g) {
        const __mmask8 m = static_cast<__mmask8>(toggled >> (8 * g));
        if (m == 0) continue;
        __m512i cnt = _mm512_loadu_si512(lane_toggles + 8 * g);
        cnt = _mm512_mask_add_epi64(cnt, m, cnt, one);
        _mm512_storeu_si512(lane_toggles + 8 * g, cnt);
        const __mmask8 om = static_cast<__mmask8>(opposite >> (8 * g));
        // weight + (+-eps) first, then the deposit add: two double adds
        // per lane in the scalar expression's order.
        const __m512d addend = _mm512_add_pd(w, _mm512_mask_blend_pd(om, neg, pos));
        __m512d v = _mm512_loadu_pd(row + 8 * g);
        v = _mm512_mask_add_pd(v, m, v, addend);
        _mm512_storeu_pd(row + 8 * g, v);
    }
}

void count_avx512(std::uint64_t* lane_toggles, std::uint64_t toggled) {
    const __m512i one = _mm512_set1_epi64(1);
    for (unsigned g = 0; g < 8; ++g) {
        const __mmask8 m = static_cast<__mmask8>(toggled >> (8 * g));
        if (m == 0) continue;
        __m512i cnt = _mm512_loadu_si512(lane_toggles + 8 * g);
        cnt = _mm512_mask_add_epi64(cnt, m, cnt, one);
        _mm512_storeu_si512(lane_toggles + 8 * g, cnt);
    }
}

}  // namespace glitchmask::power::kernels

#endif  // GLITCHMASK_HAVE_AVX512
