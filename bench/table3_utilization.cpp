// Reproduces paper Table III: utilization of the full masked DES
// implementations (including the masked key schedule).
//
// ASIC area is counted in gate equivalents over our structural netlists
// with NanGate-45nm-like cell weights, costing each DelayBuf as 12
// inverters (the paper's 120-INV DelayUnit of 10 LUTs); FPGA utilization
// is FF count plus a greedy LUT6-packing estimate; max frequency comes
// from static timing analysis over the annotated netlist.  The DOM rows
// are the reference numbers the paper cites from [17] (Sasdrich & Hutter,
// COSADE 2018), scaled to one DES as in the paper.
#include <cstdio>

#include "bench_util.hpp"
#include "des/masked_des.hpp"
#include "netlist/area.hpp"
#include "netlist/lutmap.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

using namespace glitchmask;

int main() {
    bench::banner("Table III: utilization of full DES implementations");

    TablePrinter table({"Version", "ASIC [GEs]", "FPGA [FF/LUT]",
                        "Rand (bits/round)", "Cycles/round", "Max freq [MHz]"});
    CsvWriter csv("table3_utilization.csv",
                  {"version", "ge", "ge_excl_delay", "ff", "lut", "rand",
                   "cycles_per_round", "max_freq_mhz"});

    const netlist::AreaModel area_model =
        netlist::AreaModel::nangate45_with_delay_inverters(12.0);

    for (const des::CoreFlavor flavor :
         {des::CoreFlavor::FF, des::CoreFlavor::PD, des::CoreFlavor::DOM}) {
        des::MaskedDesOptions options;
        options.flavor = flavor;
        options.delayunit_luts = 10;
        const des::MaskedDesCore core(options);

        const double ge = netlist::total_ge(core.nl(), area_model);
        const double ge_core =
            netlist::total_ge_excluding_delay(core.nl(), area_model);
        const netlist::LutMapResult luts = netlist::estimate_luts(core.nl());
        const sim::DelayModel dm(core.nl(), sim::DelayConfig::spartan6());
        const sim::CriticalPath critical = sim::analyze_timing(core.nl(), dm);

        const char* name = flavor == des::CoreFlavor::FF   ? "secAND2-FF"
                           : flavor == des::CoreFlavor::PD ? "secAND2-PD"
                                                           : "DOM-indep (ours)";
        table.add_row(
            {name, TablePrinter::integer(static_cast<long long>(ge)),
             std::to_string(luts.ffs) + "/ " + std::to_string(luts.luts),
             std::to_string(core.random_bits_per_round()),
             std::to_string(core.cycles_per_round()),
             TablePrinter::num(critical.max_freq_mhz, 0)});
        csv.raw_row({name, TablePrinter::num(ge, 1),
                     TablePrinter::num(ge_core, 1),
                     std::to_string(luts.ffs), std::to_string(luts.luts),
                     std::to_string(core.random_bits_per_round()),
                     std::to_string(core.cycles_per_round()),
                     TablePrinter::num(critical.max_freq_mhz, 1)});
        if (flavor == des::CoreFlavor::PD)
            std::printf(
                "secAND2-PD core excluding DelayUnits: %.0f GEs "
                "(paper: 12592 GEs)\n",
                ge_core);
    }

    // Reference rows quoted by the paper from [17] (28nm library; unmasked
    // key schedule; cycle count scaled to one DES).  Our own DOM row above
    // keeps the paper's S-box structure and a masked key schedule, so it is
    // the apples-to-apples baseline for the secAND2 rows.
    table.add_row({"[17] DOM-indep", "13800", "-", "176", "5", "-"});
    table.add_row({"[17] DOM-dep", "22400", "-", "528", "5", "-"});
    csv.raw_row({"dom_indep_ref", "13800", "-", "-", "-", "176", "5", "-"});
    csv.raw_row({"dom_dep_ref", "22400", "-", "-", "-", "528", "5", "-"});
    table.print();

    std::printf(
        "\nPaper Table III for comparison: secAND2-FF 15180 GEs, 819 FF / "
        "2129 LUT, 14 bits, 7 cycles, 183 MHz;\n"
        "secAND2-PD 52273 GEs, 678 FF / 6163 LUT, 14 bits, 2 cycles, 21 MHz.\n"
        "Our PD critical path carries 6 DelayUnits (global Table-II schedule\n"
        "over 4 shared variables) vs. the paper's 4, which lowers max freq\n"
        "accordingly -- see DESIGN.md for the documented deviation.\n");
    std::printf("CSV: table3_utilization.csv\n");

    // Per-module breakdown of the FF core (bonus detail).
    bench::banner("FF-core area by top-level module");
    const des::MaskedDesCore ff(des::MaskedDesOptions{});
    TablePrinter modules({"module", "GE", "cells"});
    for (const netlist::ModuleArea& entry :
         netlist::area_by_module(ff.nl(), area_model)) {
        modules.add_row({entry.module, TablePrinter::num(entry.ge, 0),
                         std::to_string(entry.cells)});
    }
    modules.print();
    return 0;
}
