file(REMOVE_RECURSE
  "CMakeFiles/masked_des_demo.dir/masked_des_demo.cpp.o"
  "CMakeFiles/masked_des_demo.dir/masked_des_demo.cpp.o.d"
  "masked_des_demo"
  "masked_des_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/masked_des_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
