#include "core/circuits.hpp"

#include <algorithm>
#include <string>

namespace glitchmask::core {

std::vector<InputSequence> all_input_sequences() {
    std::array<ShareId, 4> ids{ShareId::X0, ShareId::X1, ShareId::Y0,
                               ShareId::Y1};
    std::vector<InputSequence> sequences;
    sequences.reserve(24);
    do {
        sequences.push_back({ids[0], ids[1], ids[2], ids[3]});
    } while (std::next_permutation(
        ids.begin(), ids.end(),
        [](ShareId a, ShareId b) { return static_cast<int>(a) < static_cast<int>(b); }));
    return sequences;
}

RegisteredSecand2 build_registered_secand2(unsigned replicas) {
    RegisteredSecand2 circuit;
    Netlist& nl = circuit.nl;
    circuit.in = {nl.input("x0"), nl.input("x1"), nl.input("y0"),
                  nl.input("y1")};
    circuit.enable = {1, 2, 3, 4};
    circuit.reset = 5;

    std::array<NetId, 4> registered{};
    for (std::size_t s = 0; s < 4; ++s)
        registered[s] = nl.dff(circuit.in[s], circuit.enable[s], circuit.reset,
                               std::string("reg_") +
                                   share_name(static_cast<ShareId>(s)));

    const SharedNet x{registered[0], registered[1]};
    const SharedNet y{registered[2], registered[3]};
    circuit.outputs.reserve(replicas);
    for (unsigned k = 0; k < replicas; ++k)
        circuit.outputs.push_back(
            secand2(nl, x, y, "g" + std::to_string(k)));
    nl.freeze();
    return circuit;
}

MaskedF build_masked_f(bool with_refresh) {
    MaskedF circuit;
    Netlist& nl = circuit.nl;
    circuit.x0 = nl.input("x0");
    circuit.x1 = nl.input("x1");
    circuit.y0 = nl.input("y0");
    circuit.y1 = nl.input("y1");
    circuit.m = nl.input("m");
    circuit.refreshed = with_refresh;

    const SharedNet x{
        nl.dff(circuit.x0, circuit.in_enable, circuit.reset, "rx0"),
        nl.dff(circuit.x1, circuit.in_enable, circuit.reset, "rx1")};
    const SharedNet y{
        nl.dff(circuit.y0, circuit.in_enable, circuit.reset, "ry0"),
        nl.dff(circuit.y1, circuit.in_enable, circuit.reset, "ry1")};

    SharedNet z = secand2_ff(nl, x, y, circuit.mul_enable, circuit.reset, "mul");
    if (with_refresh) {
        const NetId m_reg = nl.dff(circuit.m, circuit.in_enable, circuit.reset, "rm");
        z = refresh_shares(nl, z, m_reg, "refresh");
    }
    circuit.f = xor_shares(nl, xor_shares(nl, x, y), z);
    nl.freeze();
    return circuit;
}

}  // namespace glitchmask::core
