#include "service/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <unordered_set>

#include "obs/ledger.hpp"
#include "support/atomic_file.hpp"
#include "support/campaign_error.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/runenv.hpp"
#include "support/telemetry.hpp"

namespace glitchmask::service {

namespace {

std::uint64_t now_ns() noexcept { return telemetry::steady_now_ns(); }

void count(telemetry::Counter counter) {
    if (telemetry::enabled()) telemetry::shard().add(counter);
}

}  // namespace

const char* job_state_name(JobState state) noexcept {
    switch (state) {
        case JobState::Queued: return "queued";
        case JobState::Running: return "running";
        case JobState::Completed: return "completed";
        case JobState::Failed: return "failed";
        case JobState::Cancelled: return "cancelled";
        case JobState::TimedOut: return "timed_out";
    }
    return "unknown";
}

CampaignService::CampaignService(ServiceConfig config)
    : config_(std::move(config)) {
    const unsigned executors = std::max(1u, config_.executors);
    executors_.reserve(executors);
    for (unsigned i = 0; i < executors; ++i)
        executors_.emplace_back([this] { executor_loop(); });
    if (config_.watchdog_timeout_sec > 0.0)
        watchdog_ = std::thread([this] { watchdog_loop(); });
}

CampaignService::~CampaignService() { shutdown(/*cancel_running=*/true); }

void CampaignService::set_progress_hook(ProgressHook hook) {
    progress_hook_ = std::move(hook);
}

void CampaignService::set_completion_hook(CompletionHook hook) {
    completion_hook_ = std::move(hook);
}

CampaignService::SubmitResult CampaignService::submit(
    const CampaignRequest& request) {
    const eval::CampaignFingerprint fingerprint = request_fingerprint(request);
    std::string key = fingerprint_hex(fingerprint);
    const bool telem = telemetry::enabled();
    const bool tracing = trace::enabled();

    JobStatus completed_now;
    bool notify_completion = false;
    std::vector<trace::Span> hit_trace;
    std::uint64_t hit_job_id = 0;
    SubmitResult result;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (draining_ || stop_) {
            result.kind = SubmitResult::Kind::Draining;
            return result;
        }
        stats_.submitted++;

        // Cache hit: the campaign already ran to completion under this
        // identity; answer without simulating.
        const std::uint64_t scan_begin = (telem || tracing) ? now_ns() : 0;
        for (auto it = cache_.begin(); it != cache_.end(); ++it) {
            if (it->key != key) continue;
            CacheEntry entry = std::move(*it);
            cache_.erase(it);
            cache_.push_front(entry);
            auto job = std::make_shared<Job>();
            job->id = next_id_++;
            job->request = request;
            job->fingerprint = fingerprint;
            job->fingerprint_key = std::move(key);
            job->state = JobState::Completed;
            job->outcome = cache_.front().outcome;
            job->cached = true;
            jobs_[job->id] = job;
            retire_job_locked(job);
            stats_.cache_hits++;
            stats_.completed++;
            count(telemetry::Counter::kServiceCacheHits);
            if (tracing) {
                // A cache hit still gets a (tiny) trace tree: one root
                // with the lookup as its only child.
                const std::uint64_t scan_end = now_ns();
                job->trace_root = trace::new_span_id();
                trace::record_span(trace::new_span_id(), "cache_lookup",
                                   job->trace_root, scan_begin, scan_end);
                trace::record_span(
                    job->trace_root, "job", 0, scan_begin, scan_end,
                    {{"job", std::to_string(job->id)},
                     {"kind", campaign_kind_name(job->request.kind)},
                     {"fingerprint", job->fingerprint_key},
                     {"state", "completed"},
                     {"cached", "1"}});
                hit_trace = harvest_job_trace(job->trace_root);
                job->spans = trace::summarize_spans(hit_trace);
                hit_job_id = job->id;
            }
            result.job_id = job->id;
            completed_now = snapshot_locked(*job);
            notify_completion = true;
            done_cv_.notify_all();
            break;
        }
        if (telem) {
            telemetry::observe(telemetry::Histogram::kCacheLookupNanos,
                               now_ns() - scan_begin);
        }
        if (!notify_completion) stats_.cache_misses++;

        if (!notify_completion) {
            // Coalesce onto an identical queued/running job: one run
            // answers both (equal fingerprints => bit-identical results).
            JobPtr primary;
            for (const auto& [id, job] : active_) {
                if (job->fingerprint_key == key && !job->coalesced) {
                    primary = job;
                    break;
                }
            }
            if (primary) {
                auto job = std::make_shared<Job>();
                job->id = next_id_++;
                job->request = request;
                job->fingerprint = fingerprint;
                job->fingerprint_key = std::move(key);
                job->coalesced = true;
                jobs_[job->id] = job;
                active_[job->id] = job;
                primary->followers.push_back(job);
                result.job_id = job->id;
            } else if (queue_.size() >= config_.queue_capacity) {
                // Explicit backpressure: the client is told, nothing is
                // dropped on the floor.
                stats_.rejected_overloaded++;
                result.kind = SubmitResult::Kind::Overloaded;
                return result;
            } else {
                auto job = std::make_shared<Job>();
                job->id = next_id_++;
                job->request = request;
                job->fingerprint = fingerprint;
                job->fingerprint_key = std::move(key);
                job->submit_ns = now_ns();
                if (tracing) job->trace_root = trace::new_span_id();
                jobs_[job->id] = job;
                active_[job->id] = job;
                queue_.push_back(job);
                stats_.queue_peak = std::max(stats_.queue_peak, queue_.size());
                telemetry::set_gauge(telemetry::Gauge::kServiceQueueDepth,
                                     queue_.size());
                result.job_id = job->id;
                work_cv_.notify_one();
            }
        }
    }
    if (!hit_trace.empty() && !config_.trace_dir.empty()) {
        try {
            trace::write_chrome_trace(trace_path(hit_job_id), hit_trace);
        } catch (const CampaignError& error) {
            log::warn(std::string("service: cannot write job trace: ") +
                      error.what());
        }
    }
    if (notify_completion && completion_hook_) completion_hook_(completed_now);
    return result;
}

bool CampaignService::cancel(std::uint64_t job_id) {
    JobStatus terminal;
    bool notify = false;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        const auto it = jobs_.find(job_id);
        if (it == jobs_.end() || job_state_terminal(it->second->state))
            return false;
        const JobPtr job = it->second;
        if (job->state == JobState::Running) {
            job->cancel.request();
            return true;
        }
        // Queued: remove from the queue (or its primary's followers) and
        // terminate immediately.
        std::erase(queue_, job);
        for (auto& [id, other] : active_)
            std::erase(other->followers, job);
        // A queued primary may carry coalesced followers; they asked for
        // the campaign, not the cancellation, so promote the first to a
        // real queued job (it inherits the cancelled job's queue slot and
        // the remaining followers) instead of stranding them.
        if (!job->followers.empty()) {
            const JobPtr heir = job->followers.front();
            heir->coalesced = false;
            heir->followers.assign(job->followers.begin() + 1,
                                   job->followers.end());
            job->followers.clear();
            heir->submit_ns = now_ns();
            if (trace::enabled()) heir->trace_root = trace::new_span_id();
            queue_.push_back(heir);
            work_cv_.notify_one();
        }
        telemetry::set_gauge(telemetry::Gauge::kServiceQueueDepth,
                             queue_.size());
        job->state = JobState::Cancelled;
        retire_job_locked(job);
        stats_.cancelled++;
        terminal = snapshot_locked(*job);
        notify = true;
        done_cv_.notify_all();
    }
    if (notify && completion_hook_) completion_hook_(terminal);
    return true;
}

std::optional<JobStatus> CampaignService::status(std::uint64_t job_id) const {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return std::nullopt;
    return snapshot_locked(*it->second);
}

std::optional<JobStatus> CampaignService::wait(std::uint64_t job_id) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return std::nullopt;
    const JobPtr job = it->second;
    done_cv_.wait(lock, [&] { return job_state_terminal(job->state); });
    return snapshot_locked(*job);
}

void CampaignService::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
        return queue_.empty() && running_ == 0 && notifying_ == 0;
    });
}

void CampaignService::shutdown(bool cancel_running) {
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stop_) return;
        draining_ = true;
        stop_ = true;
        if (cancel_running) {
            for (auto& [id, job] : jobs_) {
                if (job->state != JobState::Running) continue;
                job->shutdown_cancelled.store(true, std::memory_order_relaxed);
                job->cancel.request();
            }
        }
        work_cv_.notify_all();
        watchdog_cv_.notify_all();
    }
    for (std::thread& executor : executors_) executor.join();
    executors_.clear();
    if (watchdog_.joinable()) watchdog_.join();
    std::unique_lock<std::mutex> lock(mutex_);
    write_state_locked();
}

std::size_t CampaignService::load_state() {
    if (config_.state_path.empty()) return 0;
    std::optional<std::vector<std::uint8_t>> bytes;
    try {
        bytes = read_file_if_exists(config_.state_path);
    } catch (const CampaignError& error) {
        log::warn(std::string("service: cannot read state file: ") +
                  error.what());
        return 0;
    }
    if (!bytes) return 0;
    std::size_t accepted = 0;
    try {
        const eval::JsonValue state = eval::parse_json(std::string_view(
            reinterpret_cast<const char*>(bytes->data()), bytes->size()));
        const eval::JsonValue* requests = state.find("requests");
        if (requests == nullptr ||
            requests->kind != eval::JsonValue::Kind::kArray)
            throw std::runtime_error("state file: missing 'requests' array");
        for (const eval::JsonValue& entry : requests->array) {
            const CampaignRequest request = decode_request(entry);
            if (submit(request).kind == SubmitResult::Kind::Accepted)
                ++accepted;
            else
                log::warn("service: state-file request not re-admitted "
                          "(queue full or draining)");
        }
    } catch (const std::exception& error) {
        log::warn(std::string("service: discarding unreadable state file: ") +
                  error.what());
    }
    std::remove(config_.state_path.c_str());
    return accepted;
}

CampaignService::Stats CampaignService::stats() const {
    std::unique_lock<std::mutex> lock(mutex_);
    Stats stats = stats_;
    stats.queued_now = queue_.size();
    stats.running_now = running_;
    return stats;
}

CampaignService::MetricsInfo CampaignService::metrics_info() const {
    MetricsInfo info;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        info.stats = stats_;
        info.stats.queued_now = queue_.size();
        info.stats.running_now = running_;
        info.cache_entries = cache_.size();
        const std::uint64_t lookups =
            stats_.cache_hits + stats_.cache_misses;
        if (lookups > 0)
            info.cache_hit_rate =
                static_cast<double>(stats_.cache_hits) /
                static_cast<double>(lookups);
        telemetry::set_gauge(telemetry::Gauge::kServiceQueueDepth,
                             queue_.size());
        telemetry::set_gauge(telemetry::Gauge::kServiceRunningJobs, running_);
        telemetry::set_gauge(telemetry::Gauge::kServiceCacheEntries,
                             cache_.size());
    }
    if (!config_.spool_dir.empty()) {
        // Best-effort walk: the spool may be concurrently mutated or
        // missing; either just reads as fewer bytes.
        std::error_code ec;
        std::filesystem::directory_iterator it(config_.spool_dir, ec);
        if (!ec) {
            for (const auto& entry : it) {
                std::error_code size_ec;
                const auto size = entry.file_size(size_ec);
                if (!size_ec) info.spool_bytes += size;
            }
        }
    }
    telemetry::set_gauge(telemetry::Gauge::kServiceSpoolBytes,
                         info.spool_bytes);
    return info;
}

std::vector<trace::Span> CampaignService::harvest_job_trace(
    trace::SpanId root) {
    const std::lock_guard<std::mutex> lock(trace_mutex_);
    {
        std::vector<trace::Span> drained = trace::take_spans();
        trace_pending_.insert(trace_pending_.end(),
                              std::make_move_iterator(drained.begin()),
                              std::make_move_iterator(drained.end()));
    }
    // Transitive membership: grow the id set from the root until no span
    // joins -- buffered spans arrive in no particular order, so one pass
    // is not enough.
    std::unordered_set<trace::SpanId> tree{root};
    bool grew = true;
    while (grew) {
        grew = false;
        for (const trace::Span& span : trace_pending_) {
            if (span.id == 0 || tree.count(span.id) != 0) continue;
            if (tree.count(span.parent) != 0) {
                tree.insert(span.id);
                grew = true;
            }
        }
    }
    std::vector<trace::Span> mine;
    std::vector<trace::Span> rest;
    rest.reserve(trace_pending_.size());
    for (trace::Span& span : trace_pending_) {
        (tree.count(span.id) != 0 ? mine : rest).push_back(std::move(span));
    }
    trace_pending_ = std::move(rest);
    // Spans that never resolve to a harvested tree (a job that died before
    // recording its root) must not accumulate forever: drop the oldest.
    constexpr std::size_t kMaxPending = std::size_t{1} << 16;
    if (trace_pending_.size() > kMaxPending)
        trace_pending_.erase(
            trace_pending_.begin(),
            trace_pending_.end() -
                static_cast<std::ptrdiff_t>(kMaxPending));
    std::stable_sort(mine.begin(), mine.end(),
                     [](const trace::Span& a, const trace::Span& b) {
                         return a.begin_ns != b.begin_ns
                                    ? a.begin_ns < b.begin_ns
                                    : a.id < b.id;
                     });
    return mine;
}

CampaignService::JobPtr CampaignService::pop_next_locked() {
    // Highest priority first, FIFO within a priority; the queue is
    // capacity-bounded, so the linear scan is cheap.
    auto best = queue_.begin();
    for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it)
        if ((*it)->request.priority > (*best)->request.priority) best = it;
    JobPtr job = *best;
    queue_.erase(best);
    return job;
}

void CampaignService::retire_job_locked(const JobPtr& job) {
    // The job just reached a terminal state: out of the active index, into
    // the bounded terminal history.  Waiters holding the JobPtr still see
    // the terminal snapshot even after eviction; only id lookups age out.
    active_.erase(job->id);
    terminal_order_.push_back(job->id);
    if (config_.history_capacity == 0) return;
    while (terminal_order_.size() > config_.history_capacity) {
        bool evicted = false;
        for (auto it = terminal_order_.begin(); it != terminal_order_.end();
             ++it) {
            const auto jt = jobs_.find(*it);
            // Jobs cancelled by shutdown() must survive until
            // write_state_locked() has persisted their requests.
            if (jt != jobs_.end() &&
                jt->second->shutdown_cancelled.load(std::memory_order_relaxed))
                continue;
            if (jt != jobs_.end()) jobs_.erase(jt);
            terminal_order_.erase(it);
            evicted = true;
            break;
        }
        if (!evicted) break;
    }
}

JobStatus CampaignService::snapshot_locked(const Job& job) const {
    JobStatus status;
    status.id = job.id;
    status.state = job.state;
    status.request = job.request;
    status.outcome = job.outcome;
    status.fingerprint_key = job.fingerprint_key;
    status.cached = job.cached;
    status.coalesced = job.coalesced;
    status.error_kind = job.error_kind;
    status.error_message = job.error_message;
    status.spans = job.spans;
    return status;
}

std::string CampaignService::spool_path(const Job& job) const {
    return config_.spool_dir + "/" + job.fingerprint_key + ".gmsnap";
}

std::string CampaignService::trace_path(std::uint64_t job_id) const {
    return config_.trace_dir + "/job-" + std::to_string(job_id) +
           ".trace.json";
}

void CampaignService::executor_loop() {
    for (;;) {
        JobPtr job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
            if (stop_) return;  // queued jobs are persisted, not run
            job = pop_next_locked();
            job->state = JobState::Running;
            job->start_ns = now_ns();
            running_++;
            telemetry::set_gauge(telemetry::Gauge::kServiceQueueDepth,
                                 queue_.size());
            telemetry::set_gauge(telemetry::Gauge::kServiceRunningJobs,
                                 running_);
            if (telemetry::enabled() && job->submit_ns != 0 &&
                job->start_ns >= job->submit_ns)
                telemetry::observe(telemetry::Histogram::kQueueWaitNanos,
                                   job->start_ns - job->submit_ns);
        }
        run_job(job);
    }
}

void CampaignService::run_job(const JobPtr& job) {
    // Every log line this executor emits while the job runs carries its
    // identity, so interleaved multi-executor stderr stays attributable.
    const ScopedLogContext log_context(
        "job " + std::to_string(job->id) + " fp=" +
        job->fingerprint_key.substr(0, 8));
    const bool telem = telemetry::enabled();
    const bool tracing = trace::enabled() && job->trace_root != 0;
    if (tracing && job->submit_ns != 0 && job->start_ns >= job->submit_ns) {
        // Queue wait began on the submitter's thread and ended here:
        // recorded retrospectively under a pre-allocated id.
        trace::record_span(trace::new_span_id(), "queue_wait",
                           job->trace_root, job->submit_ns, job->start_ns);
    }

    JobState state = JobState::Completed;
    bool started = true;
    // Control-flow fault site: a plan can kill, stall, or oom the
    // executor right at job start (the chaos tests' worker-death lever).
    try {
        fault::inject_point("service.worker");
    } catch (const std::bad_alloc&) {
        job->error_kind = "error";
        job->error_message = "allocation failure starting job";
        state = JobState::Failed;
        started = false;
    }

    std::uint64_t exec_begin = 0;
    std::uint64_t exec_end = 0;
    if (started) {
        eval::CampaignRunOptions run;
        if (!config_.spool_dir.empty()) run.checkpoint_path = spool_path(*job);
        run.cancel = &job->cancel;
        // A daemon must outlive full disks and stray corruption: keep the
        // campaign running on the in-memory frontier, quarantine bad
        // snapshots.  Both decisions are warned and flagged in the outcome.
        run.degrade_on_io_error = true;
        run.discard_corrupt_snapshot = true;
        run.on_degraded = [job](const char* what, const std::string& detail) {
            log::warn("service: job " + std::to_string(job->id) + " " + what +
                      ": " + detail);
        };
        job->last_activity_ns.store(now_ns(), std::memory_order_relaxed);
        run.on_progress = [this,
                           job](const telemetry::ProgressUpdate& update) {
            job->last_activity_ns.store(now_ns(), std::memory_order_relaxed);
            if (progress_hook_) progress_hook_(job->id, update);
        };

        try {
            const trace::ScopedSpan exec("execute", job->trace_root,
                                         {{"job", std::to_string(job->id)}});
            run.trace_parent = exec.id();
            exec_begin = now_ns();
            job->outcome = run_campaign_request(job->request, std::move(run));
            exec_end = now_ns();
            if (job->outcome.cancelled)
                state = job->watchdog_fired.load(std::memory_order_relaxed)
                            ? JobState::TimedOut
                            : JobState::Cancelled;
        } catch (const CampaignError& error) {
            exec_end = now_ns();
            job->error_kind = campaign_error_kind_name(error.kind());
            job->error_message = error.what();
            state = JobState::Failed;
        } catch (const std::exception& error) {
            exec_end = now_ns();
            job->error_kind = "error";
            job->error_message = error.what();
            state = JobState::Failed;
        }
        if (telem) {
            telemetry::observe(telemetry::Histogram::kExecuteNanos,
                               exec_end - exec_begin);
            // Deterministic family: completed trace counts are a pure
            // function of the workload, so this histogram is bit-identical
            // at any executor count.
            if (state == JobState::Completed)
                telemetry::observe(
                    telemetry::Histogram::kJobTraces,
                    static_cast<std::uint64_t>(
                        job->outcome.completed_traces));
        }
    }

    std::vector<trace::SpanSummary> spans;
    if (tracing) {
        trace::record_span(
            job->trace_root, "job", 0,
            job->submit_ns != 0 ? job->submit_ns : job->start_ns, now_ns(),
            {{"job", std::to_string(job->id)},
             {"kind", campaign_kind_name(job->request.kind)},
             {"fingerprint", job->fingerprint_key},
             {"state", job_state_name(state)}});
        const std::vector<trace::Span> tree =
            harvest_job_trace(job->trace_root);
        spans = trace::summarize_spans(tree);
        if (!config_.trace_dir.empty()) {
            try {
                trace::write_chrome_trace(trace_path(job->id), tree);
            } catch (const CampaignError& error) {
                log::warn(std::string("service: cannot write job trace: ") +
                          error.what());
            }
        }
    } else {
        // Tracing off: a two-entry rollup from the timestamps the service
        // tracks anyway, so clients following a job always see *some*
        // latency breakdown.  Name-sorted like summarize_spans.
        if (exec_end >= exec_begin && exec_begin != 0)
            spans.push_back({"execute", 1, exec_end - exec_begin});
        if (job->submit_ns != 0 && job->start_ns >= job->submit_ns)
            spans.push_back(
                {"queue_wait", 1, job->start_ns - job->submit_ns});
    }
    finish_job(job, state, std::move(spans));

    // Cross-run ledger: one entry per executed job (after finish_job so a
    // slow append never delays waiters).  Best-effort -- history must not
    // fail jobs.
    if (!config_.ledger_path.empty() && started) {
        obs::LedgerEntry entry;
        entry.source = "service";
        entry.campaign = campaign_kind_name(job->request.kind);
        entry.fingerprint = job->fingerprint;
        entry.revision = git_revision();
        entry.host = host_name();
        entry.utc = utc_timestamp();
        entry.status = job_state_name(state);
        entry.workers = job->request.workers;
        entry.lanes = job->request.lanes;
        entry.wall_seconds =
            static_cast<double>(exec_end - exec_begin) * 1e-9;
        for (const auto& [name, value] : job->outcome.metrics) {
            if (name == "max_abs_t_order1") entry.max_abs_t1 = value;
            if (name == "toggles" && value >= 0.0)
                entry.toggles = static_cast<std::uint64_t>(value);
            entry.metrics.emplace_back(name, value);
        }
        try {
            obs::append_ledger(config_.ledger_path, entry);
        } catch (const std::exception& error) {
            log::warn(std::string("service: cannot append ledger: ") +
                      error.what());
        }
    }
}

void CampaignService::finish_job(const JobPtr& job, JobState state,
                                 std::vector<trace::SpanSummary> spans) {
    std::vector<JobStatus> to_notify;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        job->state = state;
        job->spans = std::move(spans);
        running_--;
        telemetry::set_gauge(telemetry::Gauge::kServiceRunningJobs, running_);
        switch (state) {
            case JobState::Completed:
                stats_.executed++;
                stats_.completed++;
                count(telemetry::Counter::kServiceJobs);
                if (config_.cache_capacity > 0) {
                    cache_.push_front(
                        CacheEntry{job->fingerprint_key, job->outcome});
                    while (cache_.size() > config_.cache_capacity)
                        cache_.pop_back();
                    telemetry::set_gauge(
                        telemetry::Gauge::kServiceCacheEntries,
                        cache_.size());
                }
                // The result is in the cache; the spool snapshot has done
                // its job and would only grow the spool unboundedly.
                if (!config_.spool_dir.empty())
                    std::remove(spool_path(*job).c_str());
                break;
            case JobState::Failed: stats_.failed++; break;
            case JobState::Cancelled: stats_.cancelled++; break;
            case JobState::TimedOut: stats_.timed_out++; break;
            default: break;
        }
        retire_job_locked(job);
        to_notify.push_back(snapshot_locked(*job));
        // Followers ride the primary's terminal state, outcome, and span
        // rollup (their latency *is* the primary's).
        for (const JobPtr& follower : job->followers) {
            follower->state = state;
            follower->outcome = job->outcome;
            follower->error_kind = job->error_kind;
            follower->error_message = job->error_message;
            follower->spans = job->spans;
            retire_job_locked(follower);
            stats_.coalesced++;
            if (state == JobState::Completed) stats_.completed++;
            to_notify.push_back(snapshot_locked(*follower));
        }
        job->followers.clear();
        if (completion_hook_) notifying_++;
        done_cv_.notify_all();
    }
    if (completion_hook_) {
        for (const JobStatus& status : to_notify) completion_hook_(status);
        std::unique_lock<std::mutex> lock(mutex_);
        notifying_--;
        done_cv_.notify_all();
    }
}

void CampaignService::watchdog_loop() {
    const auto timeout_ns = static_cast<std::uint64_t>(
        config_.watchdog_timeout_sec * 1e9);
    const auto poll = std::chrono::duration<double>(
        std::max(0.05, config_.watchdog_timeout_sec / 4.0));
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (watchdog_cv_.wait_for(lock, poll, [&] { return stop_; }))
                return;
            const std::uint64_t now = now_ns();
            for (auto& [id, job] : active_) {
                if (job->state != JobState::Running) continue;
                const std::uint64_t last =
                    job->last_activity_ns.load(std::memory_order_relaxed);
                if (last != 0 && now > last && now - last > timeout_ns &&
                    !job->watchdog_fired.exchange(true,
                                                  std::memory_order_relaxed)) {
                    // How stale the job had gone before the watchdog
                    // caught it (>= the configured timeout by design).
                    if (telemetry::enabled())
                        telemetry::observe(
                            telemetry::Histogram::kWatchdogFireNanos,
                            now - last);
                    log::warn("service: watchdog cancelling wedged job " +
                              std::to_string(id));
                    job->cancel.request();
                }
            }
        }
    }
}

void CampaignService::write_state_locked() {
    if (config_.state_path.empty()) return;
    // Everything that did not finish -- still queued, or cancelled out of
    // a running state by this shutdown -- is persisted for the next
    // incarnation; their spool snapshots make the replay a resume.
    std::vector<const CampaignRequest*> unfinished;
    for (const JobPtr& job : queue_) unfinished.push_back(&job->request);
    for (const auto& [id, job] : jobs_)
        if (job->state == JobState::Cancelled &&
            job->shutdown_cancelled.load(std::memory_order_relaxed) &&
            !job->coalesced)
            unfinished.push_back(&job->request);
    if (unfinished.empty()) {
        std::remove(config_.state_path.c_str());
        return;
    }
    std::string text = "{\"version\":1,\"requests\":[";
    for (std::size_t i = 0; i < unfinished.size(); ++i) {
        if (i != 0) text += ',';
        text += encode_request(*unfinished[i]);
    }
    text += "]}\n";
    try {
        atomic_write_file(config_.state_path,
                          std::span<const std::uint8_t>(
                              reinterpret_cast<const std::uint8_t*>(
                                  text.data()),
                              text.size()));
    } catch (const CampaignError& error) {
        log::error(std::string("service: cannot write state file: ") +
                   error.what());
    }
}

}  // namespace glitchmask::service
