file(REMOVE_RECURSE
  "CMakeFiles/leakage_lab.dir/leakage_lab.cpp.o"
  "CMakeFiles/leakage_lab.dir/leakage_lab.cpp.o.d"
  "leakage_lab"
  "leakage_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
