// Value-domain probing analysis of the gadget zoo: the exhaustive checks
// behind the paper's core claims about secAND2.
#include <gtest/gtest.h>

#include "core/gadgets.hpp"
#include "leakage/probing.hpp"

namespace glitchmask::leakage {
namespace {

using core::Netlist;
using core::SharedNet;

struct Gadget {
    Netlist nl;
    SharedNet x{}, y{}, z{};
    std::vector<netlist::NetId> fresh;
};

Gadget make_secand2() {
    Gadget g;
    g.x = core::shared_input(g.nl, "x");
    g.y = core::shared_input(g.nl, "y");
    g.z = core::secand2(g.nl, g.x, g.y);
    g.nl.freeze();
    return g;
}

TEST(Probing, Secand2EveryWireIsFirstOrderIndependent) {
    // Paper Sec. II: secAND2 is a sound first-order masked AND -- no
    // single settled wire depends on the unshared inputs.  Exhaustive over
    // all 4 secrets x 4 maskings.
    Gadget g = make_secand2();
    ProbingAnalyzer analyzer(g.nl, {g.x, g.y}, {});
    EXPECT_TRUE(analyzer.exhaustive());
    const auto violations = analyzer.first_order_violations();
    EXPECT_TRUE(violations.empty())
        << "net " << (violations.empty() ? 0u : violations.front().net)
        << " biased by "
        << (violations.empty() ? 0.0 : violations.front().bias);
}

TEST(Probing, Secand2OutputSharingIsUniformButDependent) {
    // The bare secAND2 output is a *uniform* sharing of x&y, but jointly
    // with the inputs it is not fresh: combining it with x and y in a XOR
    // (the f-circuit below) degenerates.
    Gadget g = make_secand2();
    ProbingAnalyzer analyzer(g.nl, {g.x, g.y}, {});
    EXPECT_LT(analyzer.sharing_uniformity_bias(g.z), 1e-9);
}

TEST(Probing, UnrefreshedFCircuitDegenerates) {
    // f = x ^ y ^ (x & y) without refresh: the output sharing collapses
    // (paper Sec. III-C / Fig. 7) -- the uniformity bias hits 1/2.
    Gadget g;
    g.x = core::shared_input(g.nl, "x");
    g.y = core::shared_input(g.nl, "y");
    const SharedNet product = core::secand2(g.nl, g.x, g.y);
    g.z = core::xor_shares(g.nl, core::xor_shares(g.nl, g.x, g.y), product);
    g.nl.freeze();
    ProbingAnalyzer analyzer(g.nl, {g.x, g.y}, {});
    EXPECT_GT(analyzer.sharing_uniformity_bias(g.z), 0.4);
}

TEST(Probing, RefreshedFCircuitIsUniformAgain) {
    // One fresh bit on the product restores uniformity -- Fig. 7.
    Gadget g;
    g.x = core::shared_input(g.nl, "x");
    g.y = core::shared_input(g.nl, "y");
    const netlist::NetId m = g.nl.input("m");
    g.fresh.push_back(m);
    const SharedNet product =
        core::refresh_shares(g.nl, core::secand2(g.nl, g.x, g.y), m);
    g.z = core::xor_shares(g.nl, core::xor_shares(g.nl, g.x, g.y), product);
    g.nl.freeze();
    ProbingAnalyzer analyzer(g.nl, {g.x, g.y}, g.fresh);
    EXPECT_TRUE(analyzer.first_order_secure());
    EXPECT_LT(analyzer.sharing_uniformity_bias(g.z), 1e-9);
}

TEST(Probing, CrossShareProbePairLeaks) {
    // Probing both shares of an *input* trivially reveals it: sanity check
    // that the pair metric actually detects dependence.
    Gadget g = make_secand2();
    ProbingAnalyzer analyzer(g.nl, {g.x, g.y}, {});
    EXPECT_GT(analyzer.pair_bias(g.x.s0, g.x.s1), 0.4);
}

TEST(Probing, TrichinaWiresAreFirstOrderIndependent) {
    Gadget g;
    g.x = core::shared_input(g.nl, "x");
    g.y = core::shared_input(g.nl, "y");
    const netlist::NetId r = g.nl.input("r");
    g.fresh.push_back(r);
    g.z = core::trichina_and(g.nl, g.x, g.y, r);
    g.nl.freeze();
    ProbingAnalyzer analyzer(g.nl, {g.x, g.y}, g.fresh);
    // The *settled* wires of the Trichina gadget are all independent (its
    // insecurity is an evaluation-order/glitch effect, which the value
    // domain cannot see -- exactly the paper's point about hardware).
    EXPECT_TRUE(analyzer.first_order_secure());
}

TEST(Probing, DomOutputPairIsIndependent) {
    Gadget g;
    g.x = core::shared_input(g.nl, "x");
    g.y = core::shared_input(g.nl, "y");
    const netlist::NetId r = g.nl.input("r");
    g.fresh.push_back(r);
    g.z = core::dom_and_indep(g.nl, g.x, g.y, r);  // flops transparent
    g.nl.freeze();
    ProbingAnalyzer analyzer(g.nl, {g.x, g.y}, g.fresh);
    EXPECT_TRUE(analyzer.first_order_secure());
    EXPECT_LT(analyzer.sharing_uniformity_bias(g.z), 1e-9);
}

TEST(Probing, DetectsADeliberatelyBrokenGadget) {
    // z = x0 & (y0 ^ y1): recombines both shares of y -- a single probe on
    // the AND output reveals y whenever x0 = 1.
    Gadget g;
    g.x = core::shared_input(g.nl, "x");
    g.y = core::shared_input(g.nl, "y");
    const netlist::NetId yy = g.nl.xor2(g.y.s0, g.y.s1, "recombined");
    const netlist::NetId bad = g.nl.and2(g.x.s0, yy, "bad");
    g.nl.freeze();
    ProbingAnalyzer analyzer(g.nl, {g.x, g.y}, {});
    EXPECT_FALSE(analyzer.first_order_secure());
    EXPECT_GT(analyzer.net_bias(yy), 0.4);
    EXPECT_GT(analyzer.net_bias(bad), 0.2);
}

TEST(Probing, SamplingModeKicksInForLargeMaskSpaces) {
    Gadget g;
    g.x = core::shared_input(g.nl, "x");
    g.y = core::shared_input(g.nl, "y");
    std::vector<netlist::NetId> fresh;
    for (int i = 0; i < 24; ++i)
        fresh.push_back(g.nl.input("r" + std::to_string(i)));
    SharedNet z = core::secand2(g.nl, g.x, g.y);
    for (const netlist::NetId m : fresh) z = core::refresh_shares(g.nl, z, m);
    g.nl.freeze();
    ProbingOptions options;
    options.samples_per_secret = 4000;
    options.bias_threshold = 0.05;  // statistical slack
    ProbingAnalyzer analyzer(g.nl, {g.x, g.y}, fresh, options);
    EXPECT_FALSE(analyzer.exhaustive());
    EXPECT_TRUE(analyzer.first_order_secure());
}

TEST(Probing, RejectsOversizedProblems) {
    Gadget g;
    std::vector<SharedNet> secrets;
    for (int i = 0; i < 17; ++i)
        secrets.push_back(core::shared_input(g.nl, "v" + std::to_string(i)));
    g.nl.freeze();
    EXPECT_THROW(ProbingAnalyzer(g.nl, secrets, {}), std::invalid_argument);
}

TEST(Probing, Secand2FfIsTransparentlyAnalyzable) {
    // The FF variant (flops transparent) has the same settled function and
    // the same value-domain guarantees as the bare gadget.
    Gadget g;
    g.x = core::shared_input(g.nl, "x");
    g.y = core::shared_input(g.nl, "y");
    g.z = core::secand2_ff(g.nl, g.x, g.y, /*enable=*/1);
    g.nl.freeze();
    ProbingAnalyzer analyzer(g.nl, {g.x, g.y}, {});
    EXPECT_TRUE(analyzer.first_order_secure());
    EXPECT_LT(analyzer.sharing_uniformity_bias(g.z), 1e-9);
}

TEST(Probing, ProductChainWiresAreFirstOrderIndependent) {
    // A 3-variable secAND2 chain (the Fig. 6 structure, delays stripped):
    // every settled wire stays independent of the three secrets.
    Gadget g;
    std::vector<SharedNet> vars;
    core::Netlist& nl = g.nl;
    for (int i = 0; i < 3; ++i)
        vars.push_back(core::shared_input(nl, "v" + std::to_string(i)));
    SharedNet acc = core::secand2(nl, vars[0], vars[1], "g1");
    acc = core::secand2(nl, acc, vars[2], "g2");
    g.z = acc;
    nl.freeze();
    ProbingAnalyzer analyzer(nl, vars, {});
    EXPECT_TRUE(analyzer.exhaustive());
    EXPECT_TRUE(analyzer.first_order_secure());
    EXPECT_LT(analyzer.sharing_uniformity_bias(g.z), 1e-9);
}

}  // namespace
}  // namespace glitchmask::leakage
