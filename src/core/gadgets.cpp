#include "core/gadgets.hpp"

#include <string>

namespace glitchmask::core {

namespace {

/// The shared secAND2 arithmetic on four already-conditioned share nets.
/// z0 = (x0 & y0) ^ (x0 | !y1);  z1 = (x1 & y0) ^ (x1 | !y1).
/// Each output share is a single SecAnd3 cell: this is exactly how the
/// equations map to hardware -- one 3-input LUT per output on the FPGA
/// (Fig. 1 draws discrete AND/OR/XOR/INV gates, but no real mapping gives
/// the sub-gates their own routed nets), so each output transitions once
/// per input arrival, with the Hamming distance the paper reasons about.
SharedNet secand2_core(Netlist& nl, NetId x0, NetId x1, NetId y0, NetId y1) {
    return SharedNet{nl.secand3(x0, y0, y1, "z0"),
                     nl.secand3(x1, y0, y1, "z1")};
}

}  // namespace

SharedNet secand2(Netlist& nl, SharedNet x, SharedNet y, std::string_view name) {
    Netlist::Scope scope(nl, name);
    return secand2_core(nl, x.s0, x.s1, y.s0, y.s1);
}

SharedNet secand2_ff(Netlist& nl, SharedNet x, SharedNet y, CtrlGroup enable,
                     CtrlGroup reset, std::string_view name) {
    Netlist::Scope scope(nl, name);
    const NetId y1_delayed = nl.dff(y.s1, enable, reset, "y1_ff");
    return secand2_core(nl, x.s0, x.s1, y.s0, y1_delayed);
}

SharedNet secand2_pd(Netlist& nl, SharedNet x, SharedNet y,
                     const PathDelayOptions& options, std::string_view name) {
    Netlist::Scope scope(nl, name);
    // Arrival order (Fig. 3): y0 first (+0), then x0 and x1 (+1 DelayUnit
    // each), finally y1 (+2 DelayUnits).
    const netlist::DelayChain x0_chain =
        netlist::delay_units(nl, x.s0, 1, options.luts_per_unit, "x0");
    const netlist::DelayChain x1_chain =
        netlist::delay_units(nl, x.s1, 1, options.luts_per_unit, "x1");
    const netlist::DelayChain y1_chain =
        netlist::delay_units(nl, y.s1, 2, options.luts_per_unit, "y1");
    if (options.couple_adjacent) {
        // Chains are placed side by side in creation order: x0|x1, x1|y1.
        netlist::couple_chains(nl, x0_chain, x1_chain);
        netlist::couple_chains(nl, x1_chain, y1_chain);
    }
    return secand2_core(nl, x0_chain.out, x1_chain.out, y.s0, y1_chain.out);
}

SharedNet trichina_and(Netlist& nl, SharedNet x, SharedNet y, NetId r,
                       std::string_view name) {
    Netlist::Scope scope(nl, name);
    // Literal left-to-right chain: r ^ x0y0 ^ x0y1 ^ x1y1 ^ x1y0.
    NetId acc = r;
    acc = nl.xor2(acc, nl.and2(x.s0, y.s0, "t00"), "c0");
    acc = nl.xor2(acc, nl.and2(x.s0, y.s1, "t01"), "c1");
    acc = nl.xor2(acc, nl.and2(x.s1, y.s1, "t11"), "c2");
    acc = nl.xor2(acc, nl.and2(x.s1, y.s0, "t10"), "c3");
    return SharedNet{acc, r};
}

SharedNet dom_and_indep(Netlist& nl, SharedNet x, SharedNet y, NetId r,
                        CtrlGroup enable, std::string_view name) {
    Netlist::Scope scope(nl, name);
    const NetId t00 = nl.and2(x.s0, y.s0, "t00");
    const NetId t01 = nl.xor2(nl.and2(x.s0, y.s1, "t01"), r, "t01r");
    const NetId t10 = nl.xor2(nl.and2(x.s1, y.s0, "t10"), r, "t10r");
    const NetId t11 = nl.and2(x.s1, y.s1, "t11");
    // Domain-crossing terms go through the register stage; the inner
    // terms are registered too so both XOR inputs arrive aligned.
    const NetId q00 = nl.dff(t00, enable, netlist::kAlwaysEnabled, "q00");
    const NetId q01 = nl.dff(t01, enable, netlist::kAlwaysEnabled, "q01");
    const NetId q10 = nl.dff(t10, enable, netlist::kAlwaysEnabled, "q10");
    const NetId q11 = nl.dff(t11, enable, netlist::kAlwaysEnabled, "q11");
    return SharedNet{nl.xor2(q00, q01, "z0"), nl.xor2(q11, q10, "z1")};
}

SharedNet dom_and_dep(Netlist& nl, SharedNet x, SharedNet y, NetId r0, NetId r1,
                      NetId r2, CtrlGroup enable, std::string_view name) {
    Netlist::Scope scope(nl, name);
    const SharedNet xr = refresh_shares(nl, x, r0, "rx");
    const SharedNet yr = refresh_shares(nl, y, r1, "ry");
    const SharedNet xq = reg_shares(nl, xr, enable, netlist::kAlwaysEnabled, "xq");
    const SharedNet yq = reg_shares(nl, yr, enable, netlist::kAlwaysEnabled, "yq");
    return dom_and_indep(nl, xq, yq, r2, enable, "mul");
}

SharedNet refresh_shares(Netlist& nl, SharedNet a, NetId m,
                         std::string_view name) {
    Netlist::Scope scope(nl, name);
    return SharedNet{nl.xor2(a.s0, m, "r0"), nl.xor2(a.s1, m, "r1")};
}

SharedNet xor_shares(Netlist& nl, SharedNet a, SharedNet b) {
    return SharedNet{nl.xor2(a.s0, b.s0), nl.xor2(a.s1, b.s1)};
}

SharedNet not_shares(Netlist& nl, SharedNet a) {
    return SharedNet{nl.inv(a.s0), a.s1};
}

SharedNet reg_shares(Netlist& nl, SharedNet a, CtrlGroup enable, CtrlGroup reset,
                     std::string_view name) {
    std::string n0;
    std::string n1;
    if (!name.empty()) {
        n0 = std::string(name) + "_s0";
        n1 = std::string(name) + "_s1";
    }
    return SharedNet{nl.dff(a.s0, enable, reset, n0),
                     nl.dff(a.s1, enable, reset, n1)};
}

SharedNet shared_input(Netlist& nl, std::string_view name) {
    const std::string base(name);
    return SharedNet{nl.input(base + "_s0"), nl.input(base + "_s1")};
}

SharedBus shared_input_bus(Netlist& nl, std::string_view name,
                           std::size_t width) {
    SharedBus bus(width);
    for (std::size_t i = 0; i < width; ++i)
        bus[i] = shared_input(nl, std::string(name) + '[' + std::to_string(i) + ']');
    return bus;
}

}  // namespace glitchmask::core
