// Wide-lane engine implementation, textually included per ISA variant.
//
// The including TU defines GLITCHMASK_ENGINE_VARIANT (a namespace name)
// and gets one full copy of the engine template plus a factory
//
//     std::unique_ptr<CompiledEngineBase>
//     GLITCHMASK_ENGINE_VARIANT::make_engine(program, chunks);
//
// compiled_engine_portable.cpp compiles it with the project's baseline
// flags; compiled_engine_avx2.cpp adds -mavx2 (+ -ffp-contract=off) so
// the LW<W> lane-word loops and eval_cell_lw compile to 256-bit ops.
// The engine is pure integer code -- lane words, times, counters -- so
// the ISA variant cannot change a committed waveform bit; dispatch picks
// a variant in make_compiled_engine purely for speed
// (tests/compiled_sim_test + moment_bank_test assert == across
// GLITCHMASK_SIMD levels).
//
// Layout notes (this file is also where the per-event memory plan
// lives):
//   * CellState packs every mutable per-cell field the event loop
//     touches -- committed output, last scheduled value, activity-window
//     mask/stamp, gate delay, inertial window, pending commits, marks --
//     into one contiguous struct.  A commit previously walked five
//     parallel arrays plus two program arrays (seven-plus cache lines,
//     most of a ~1 MB working set at W=4); now it touches one struct
//     line-run plus the two small heap blocks.
//   * Event is 48 bytes at W=4: pin packs into the cell id's top byte
//     (programs are capped at 2^24 cells) and seq is 32-bit with an
//     explicit overflow guard (a settle pass never reaches 4G events).
//     Commit events never write or read their mask.
//
// Everything here lives in internal linkage except the factory, so two
// variants in one binary cannot collide.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <stdexcept>
#include <vector>

#include "sim/compiled_simulator.hpp"

namespace glitchmask::sim {
namespace GLITCHMASK_ENGINE_VARIANT {
namespace {

constexpr std::uint8_t kOutputPin = 0xFF;
constexpr std::uint8_t kSourcePin = 0xFE;
constexpr TimePs kNoEvent = ~TimePs{0};

// ----- lane words --------------------------------------------------------

template <unsigned W>
struct LW {
    std::uint64_t w[W];
};

template <unsigned W>
[[nodiscard]] inline bool lw_none(const LW<W>& x) noexcept {
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < W; ++i) acc |= x.w[i];
    return acc == 0;
}

template <unsigned W>
[[nodiscard]] inline std::uint64_t lw_popcount(const LW<W>& x) noexcept {
    std::uint64_t n = 0;
    for (unsigned i = 0; i < W; ++i)
        n += static_cast<std::uint64_t>(std::popcount(x.w[i]));
    return n;
}

template <unsigned W>
[[nodiscard]] inline LW<W> lw_and(const LW<W>& a, const LW<W>& b) noexcept {
    LW<W> r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = a.w[i] & b.w[i];
    return r;
}

template <unsigned W>
[[nodiscard]] inline LW<W> lw_andnot(const LW<W>& a, const LW<W>& b) noexcept {
    LW<W> r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = a.w[i] & ~b.w[i];
    return r;
}

template <unsigned W>
[[nodiscard]] inline LW<W> lw_xor(const LW<W>& a, const LW<W>& b) noexcept {
    LW<W> r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = a.w[i] ^ b.w[i];
    return r;
}

template <unsigned W>
inline void lw_or_eq(LW<W>& a, const LW<W>& b) noexcept {
    for (unsigned i = 0; i < W; ++i) a.w[i] |= b.w[i];
}

template <unsigned W>
inline void lw_andnot_eq(LW<W>& a, const LW<W>& b) noexcept {
    for (unsigned i = 0; i < W; ++i) a.w[i] &= ~b.w[i];
}

/// dst = (dst & ~mask) | (val & mask)
template <unsigned W>
inline void lw_merge(LW<W>& dst, const LW<W>& val, const LW<W>& mask) noexcept {
    for (unsigned i = 0; i < W; ++i)
        dst.w[i] = (dst.w[i] & ~mask.w[i]) | (val.w[i] & mask.w[i]);
}

template <unsigned W>
[[nodiscard]] inline LW<W> lw_splat(std::uint64_t v) noexcept {
    LW<W> r;
    for (unsigned i = 0; i < W; ++i) r.w[i] = v;
    return r;
}

/// Wide evaluation with the kind switch hoisted out of the word loop
/// (netlist::eval_cell_word would re-dispatch per 64-lane word).  `p`
/// points at the cell's 3 pin words; bit-for-bit eval_cell_word per word.
template <unsigned W>
[[nodiscard]] inline LW<W> eval_cell_lw(netlist::CellKind kind,
                                        const LW<W>* p) noexcept {
    using netlist::CellKind;
    LW<W> r;
    switch (kind) {
        case CellKind::Input:
        case CellKind::Buf:
        case CellKind::DelayBuf:
        case CellKind::Dff:
            r = p[0];
            break;
        case CellKind::Const0:
            r = LW<W>{};
            break;
        case CellKind::Const1:
            r = lw_splat<W>(~std::uint64_t{0});
            break;
        case CellKind::Inv:
            for (unsigned i = 0; i < W; ++i) r.w[i] = ~p[0].w[i];
            break;
        case CellKind::And2:
            for (unsigned i = 0; i < W; ++i) r.w[i] = p[0].w[i] & p[1].w[i];
            break;
        case CellKind::Nand2:
            for (unsigned i = 0; i < W; ++i) r.w[i] = ~(p[0].w[i] & p[1].w[i]);
            break;
        case CellKind::Or2:
            for (unsigned i = 0; i < W; ++i) r.w[i] = p[0].w[i] | p[1].w[i];
            break;
        case CellKind::Nor2:
            for (unsigned i = 0; i < W; ++i) r.w[i] = ~(p[0].w[i] | p[1].w[i]);
            break;
        case CellKind::Xor2:
            for (unsigned i = 0; i < W; ++i) r.w[i] = p[0].w[i] ^ p[1].w[i];
            break;
        case CellKind::Xnor2:
            for (unsigned i = 0; i < W; ++i) r.w[i] = ~(p[0].w[i] ^ p[1].w[i]);
            break;
        case CellKind::Orn2:
            for (unsigned i = 0; i < W; ++i) r.w[i] = p[0].w[i] | ~p[1].w[i];
            break;
        case CellKind::SecAnd3:
            for (unsigned i = 0; i < W; ++i)
                r.w[i] = (p[0].w[i] & p[1].w[i]) ^ (p[0].w[i] | ~p[2].w[i]);
            break;
        case CellKind::Mux2:
            for (unsigned i = 0; i < W; ++i)
                r.w[i] = (p[2].w[i] & p[1].w[i]) | (~p[2].w[i] & p[0].w[i]);
            break;
        default:
            r = LW<W>{};
            break;
    }
    return r;
}

// ----- the wide-lane engine ----------------------------------------------

template <unsigned W>
class CompiledEngine final : public CompiledEngineBase {
public:
    explicit CompiledEngine(std::shared_ptr<const CompiledProgram> program)
        : program_(std::move(program)), p_(program_.get()) {
        const std::size_t n = p_->n_cells;
        if (n >= (std::size_t{1} << 24))
            throw std::invalid_argument(
                "CompiledEngine: more than 2^24 cells (event cell/pin "
                "packing)");
        cells_.resize(n);
        for (CellId id = 0; id < n; ++id) {
            cells_[id].gate_ps = p_->gate_ps[id];
            cells_[id].inertial_window = p_->inertial_window[id];
        }
        pin_val_.resize(p_->pin_base[n]);
        ring_mask_ = p_->ring_size - 1;
        buckets_.resize(p_->ring_size);
        occ_.assign(p_->ring_size / 64, 0);
        for (unsigned c = 0; c < W; ++c) views_[c].bind(this, c);
        initialize();
    }

    [[nodiscard]] unsigned chunks() const noexcept override { return W; }

    void initialize() override {
        for (std::size_t slot = 0; slot < buckets_.size(); ++slot)
            buckets_[slot].clear();
        std::fill(occ_.begin(), occ_.end(), 0);
        overflow_ = {};
        wheel_count_ = 0;
        live_ = 0;
        now_ = 0;
        seq_ = 0;
        window_epoch_ = 1;
        const std::size_t n = p_->n_cells;
        for (auto& pv : pin_val_) pv = LW<W>{};
        for (CellId id = 0; id < n; ++id) {
            CellState& cs = cells_[id];
            const LW<W> v = lw_splat<W>(p_->settle_one[id] ? kAllLanes : 0);
            cs.out = v;
            cs.last_sched = v;
            cs.window_toggled = LW<W>{};
            cs.window_stamp = 0;
            cs.pending.clear();
            cs.marks.clear();
        }
        for (CellId id = 0; id < n; ++id) {
            const unsigned pins = p_->pins[id];
            for (unsigned q = 0; q < pins; ++q)
                pin_val_[p_->pin_base[id] + q] = cells_[p_->in[id * 3 + q]].out;
        }
    }

    void set_sink(unsigned chunk, BatchToggleSink* sink) noexcept override {
        sinks_[chunk] = sink;
    }

    [[nodiscard]] const BatchWordView* chunk_view(
        unsigned chunk) const noexcept override {
        return &views_[chunk];
    }

    void drive_chunk(NetId source, unsigned chunk, std::uint64_t values,
                     std::uint64_t lanes, TimePs time) override {
        if (lanes == 0) return;
        check_drive_time(time);
        Pending p{};
        p.time = time;
        p.seq = seq_;
        p.lanes.w[chunk] = lanes;
        p.value.w[chunk] = values;
        cells_[source].pending.push_back(p);
        push_commit(source, kSourcePin, time);
    }

    void drive_all(NetId source, bool value, TimePs time) override {
        check_drive_time(time);
        Pending p{};
        p.time = time;
        p.seq = seq_;
        p.lanes = lw_splat<W>(kAllLanes);
        p.value = lw_splat<W>(value ? kAllLanes : 0);
        cells_[source].pending.push_back(p);
        push_commit(source, kSourcePin, time);
    }

    void sample_flops(const std::uint8_t* enable, const std::uint8_t* reset,
                      TimePs launch) override {
        // Same per-edge discipline as BatchClockedSim: reset beats enable,
        // the D pin is the wire-delayed view, and only changed lanes are
        // launched (flop order == drive order == seq order).
        for (const CompiledProgram::FlopInfo& flop : p_->flops) {
            const LW<W>& cur = cells_[flop.cell].out;
            LW<W> q;
            if (flop.reset != netlist::kAlwaysEnabled && reset[flop.reset] != 0)
                q = LW<W>{};
            else if (enable[flop.enable] != 0)
                q = pin_val_[p_->pin_base[flop.cell]];
            else
                q = cur;
            const LW<W> changed = lw_xor(q, cur);
            if (lw_none(changed)) continue;
            cells_[flop.cell].pending.push_back(
                Pending{launch, seq_, changed, q});
            push_commit(flop.cell, kSourcePin, launch);
        }
    }

    void run_until(TimePs t_end) override {
        while (step_one_time(t_end)) {
        }
        now_ = t_end;
    }

    TimePs run_to_quiescence() override {
        while (step_one_time(kNoEvent)) {
        }
        return now_;
    }

    [[nodiscard]] std::uint64_t word(NetId net,
                                     unsigned chunk) const noexcept override {
        return cells_[net].out.w[chunk];
    }

    [[nodiscard]] std::uint64_t pin_word(CellId cell, unsigned pin,
                                         unsigned chunk) const noexcept override {
        return pin_val_[p_->pin_base[cell] + pin].w[chunk];
    }

    [[nodiscard]] TimePs now() const noexcept override { return now_; }

    void begin_activity_window() noexcept override { ++window_epoch_; }

    [[nodiscard]] telemetry::SimStats stats() const noexcept override {
        return telemetry::SimStats{processed_, toggles_, glitches_,
                                   inertial_cancels_, queue_peak_};
    }

private:
    // Events are the unit of queue traffic, so they carry the minimum: a
    // pin event needs only the toggle mask (per-edge FIFO delivery means
    // flipping exactly those lanes reproduces the old merge), and commit
    // events (output or source) carry nothing -- their lanes and target
    // value wait in CellState::pending, keyed by seq.  pin lives in the
    // cell id's top byte and seq is 32-bit (guarded), so the header is
    // 16 bytes and an Event is 48 B at W=4 / 80 B at W=8.
    struct Event {
        TimePs time;
        std::uint32_t seq;
        std::uint32_t cell_pin;  // (pin << 24) | cell
        LW<W> mask;              // pin event: lanes to flip; commits: unused

        Event() = default;
        Event(TimePs t, std::uint32_t s, std::uint32_t cp) noexcept
            : time(t), seq(s), cell_pin(cp) {}
        Event(TimePs t, std::uint32_t s, std::uint32_t cp,
              const LW<W>& m) noexcept
            : time(t), seq(s), cell_pin(cp), mask(m) {}
    };
    struct Pending {
        TimePs time;
        std::uint32_t seq;
        LW<W> lanes;
        LW<W> value;
    };
    struct Mark {
        TimePs when;
        LW<W> lanes;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            return (a.time != b.time) ? a.time > b.time : a.seq > b.seq;
        }
    };

    /// Every mutable per-cell field the event loop touches, contiguous.
    struct CellState {
        LW<W> out;             // committed output value
        LW<W> last_sched;      // last scheduled output value
        LW<W> window_toggled;  // lanes toggled in this activity window
        std::uint32_t window_stamp = 0;
        std::uint32_t gate_ps = 0;
        TimePs inertial_window = 0;
        std::vector<Pending> pending;
        std::vector<Mark> marks;
    };

    class ChunkView final : public BatchWordView {
    public:
        void bind(const CompiledEngine* engine, unsigned chunk) noexcept {
            engine_ = engine;
            chunk_ = chunk;
        }
        [[nodiscard]] std::uint64_t word(NetId net) const noexcept override {
            return engine_->cells_[net].out.w[chunk_];
        }

    private:
        const CompiledEngine* engine_ = nullptr;
        unsigned chunk_ = 0;
    };

    static constexpr std::uint32_t pack(CellId cell, std::uint8_t pin) noexcept {
        return (static_cast<std::uint32_t>(pin) << 24) |
               static_cast<std::uint32_t>(cell);
    }

    void check_drive_time(TimePs time) const {
        if (time < now_)
            throw std::invalid_argument(
                "CompiledEngine: drive in the past (the time-slot ring "
                "replays forward only)");
    }

    [[nodiscard]] std::uint32_t next_seq() {
        if (seq_ == std::numeric_limits<std::uint32_t>::max())
            throw std::runtime_error(
                "CompiledEngine: event sequence counter overflow");
        return seq_++;
    }

    // ----- time-slot ring ------------------------------------------------

    void note_push(TimePs time) noexcept {
        ++live_;
        if (live_ > queue_peak_) queue_peak_ = live_;
        const std::size_t slot = time & ring_mask_;
        occ_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
        ++wheel_count_;
    }

    /// Commit event: lanes/value live in CellState::pending under this
    /// seq, so the event's mask stays unwritten (and unread).
    void push_commit(CellId cell, std::uint8_t pin, TimePs time) {
        const std::uint32_t seq = next_seq();
        if (time - now_ <= ring_mask_) {
            buckets_[time & ring_mask_].emplace_back(time, seq,
                                                     pack(cell, pin));
            note_push(time);
        } else {
            ++live_;
            if (live_ > queue_peak_) queue_peak_ = live_;
            overflow_.push(Event(time, seq, pack(cell, pin)));
        }
    }

    void push_pin_event(CellId cell, std::uint8_t pin, TimePs time,
                        const LW<W>& mask) {
        const std::uint32_t seq = next_seq();
        if (time - now_ <= ring_mask_) {
            buckets_[time & ring_mask_].emplace_back(time, seq,
                                                     pack(cell, pin), mask);
            note_push(time);
        } else {
            ++live_;
            if (live_ > queue_peak_) queue_peak_ = live_;
            overflow_.push(Event(time, seq, pack(cell, pin), mask));
        }
    }

    /// Earliest occupied slot time >= now_ (valid only when the wheel is
    /// non-empty): word-wise circular scan of the occupancy bitmap.
    [[nodiscard]] TimePs next_wheel_time() const noexcept {
        const std::size_t i0 = now_ & ring_mask_;
        const std::size_t nwords = occ_.size();
        std::size_t word_idx = i0 >> 6;
        std::uint64_t w = occ_[word_idx] & (~std::uint64_t{0} << (i0 & 63));
        for (std::size_t k = 0; k <= nwords; ++k) {
            if (w != 0) {
                const std::size_t slot =
                    (word_idx << 6) +
                    static_cast<std::size_t>(std::countr_zero(w));
                return now_ + ((slot - i0) & ring_mask_);
            }
            word_idx = word_idx + 1 == nwords ? 0 : word_idx + 1;
            w = occ_[word_idx];
        }
        return kNoEvent;  // unreachable while wheel_count_ > 0
    }

    void migrate_overflow() {
        while (!overflow_.empty() && overflow_.top().time - now_ <= ring_mask_) {
            Event ev = overflow_.top();
            overflow_.pop();
            const std::size_t slot = ev.time & ring_mask_;
            auto& bucket = buckets_[slot];
            // Keep the bucket seq-sorted: entries appended while this
            // event sat in the overflow heap carry larger seq numbers.
            std::size_t pos = bucket.size();
            while (pos > 0 && bucket[pos - 1].seq > ev.seq) --pos;
            bucket.insert(bucket.begin() + static_cast<std::ptrdiff_t>(pos),
                          std::move(ev));
            occ_[slot >> 6] |= std::uint64_t{1} << (slot & 63);
            ++wheel_count_;
        }
    }

    /// Processes every event at the next event time if it is < t_end.
    bool step_one_time(TimePs t_end) {
        TimePs t = kNoEvent;
        if (wheel_count_ != 0) t = next_wheel_time();
        if (!overflow_.empty() && overflow_.top().time < t)
            t = overflow_.top().time;
        if (t >= t_end) return false;
        now_ = t;
        migrate_overflow();
        const std::size_t slot = t & ring_mask_;
        auto& bucket = buckets_[slot];
        // Index loop, size re-read each pass: same-time pushes during the
        // drain append here and must run in this pass (FIFO == seq order,
        // exactly the heap's (time, seq) order).  Only the 16-byte header
        // is copied up front (pushes may reallocate the bucket); the mask
        // is copied just for pin events.
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            const TimePs time = bucket[i].time;
            const std::uint32_t seq = bucket[i].seq;
            const std::uint32_t cell_pin = bucket[i].cell_pin;
            ++processed_;
            --wheel_count_;
            --live_;
            const CellId cell = cell_pin & 0xFFFFFFu;
            const std::uint8_t pin = static_cast<std::uint8_t>(cell_pin >> 24);
            if (pin >= kSourcePin) {
                commit_output(cell, time, seq);
            } else {
                const LW<W> mask = bucket[i].mask;
                update_pin(cell, pin, time, mask);
            }
        }
        bucket.clear();
        occ_[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
        return true;
    }

    // ----- ported event-engine semantics (see sim/batch_simulator.cpp) --

    void schedule_group(CellId cell, const LW<W>& value, const LW<W>& lanes,
                        TimePs when) {
        CellState& cs = cells_[cell];
        LW<W> cancelled{};
        if (p_->inertial_filtering) {
            LW<W> to_check = lanes;
            auto& pending = cs.pending;
            for (auto it = pending.rbegin();
                 it != pending.rend() && !lw_none(to_check); ++it) {
                const LW<W> m = lw_and(to_check, it->lanes);
                if (lw_none(m)) continue;
                if (when >= it->time && when - it->time < cs.inertial_window) {
                    lw_andnot_eq(it->lanes, m);
                    lw_or_eq(cancelled, m);
                }
                lw_andnot_eq(to_check, m);
            }
            inertial_cancels_ += lw_popcount(cancelled);
        }

        lw_merge(cs.last_sched, value, lanes);
        auto& marks = cs.marks;
        for (Mark& mark : marks) lw_andnot_eq(mark.lanes, lanes);
        bool merged = false;
        for (Mark& mark : marks) {
            if (mark.when == when) {
                lw_or_eq(mark.lanes, lanes);
                merged = true;
                break;
            }
        }
        if (!merged) marks.push_back(Mark{when, lanes});

        const LW<W> survivors = lw_andnot(lanes, cancelled);
        if (lw_none(survivors)) return;
        cs.pending.push_back(Pending{when, seq_, survivors, value});
        push_commit(cell, kOutputPin, when);
    }

    void schedule_output(CellId cell, const LW<W>& value, const LW<W>& changed,
                         TimePs at) {
        auto& marks = cells_[cell].marks;
        std::erase_if(marks, [at](const Mark& mark) {
            return mark.when < at || lw_none(mark.lanes);
        });

        LW<W> covered{};
        for (const Mark& mark : marks) lw_or_eq(covered, mark.lanes);
        covered = lw_and(covered, changed);

        const LW<W> unmarked = lw_andnot(changed, covered);

        if (lw_none(covered)) {
            schedule_group(cell, value, unmarked, at == 0 ? 1 : at);
            return;
        }

        struct Group {
            TimePs when;
            LW<W> lanes;
        };
        Group groups[8];
        std::size_t n_groups = 0;
        std::vector<Group> spill;
        LW<W> left = covered;
        while (!lw_none(left)) {
            TimePs newest = 0;
            for (const Mark& mark : marks)
                if (!lw_none(lw_and(mark.lanes, left)) && mark.when >= newest)
                    newest = mark.when;
            LW<W> lanes_at_newest{};
            for (const Mark& mark : marks)
                if (mark.when == newest)
                    lw_or_eq(lanes_at_newest, lw_and(mark.lanes, left));
            if (n_groups < 8)
                groups[n_groups++] = Group{newest + 1, lanes_at_newest};
            else
                spill.push_back(Group{newest + 1, lanes_at_newest});
            lw_andnot_eq(left, lanes_at_newest);
        }
        for (std::size_t i = 0; i < n_groups; ++i)
            schedule_group(cell, value, groups[i].lanes, groups[i].when);
        for (const Group& group : spill)
            schedule_group(cell, value, group.lanes, group.when);
        if (!lw_none(unmarked))
            schedule_group(cell, value, unmarked, at == 0 ? 1 : at);
    }

    void commit_output(CellId cell, TimePs time, std::uint32_t seq) {
        CellState& cs = cells_[cell];
        auto& pending = cs.pending;
        LW<W> lanes{};
        LW<W> value{};
        for (auto it = pending.begin(); it != pending.end(); ++it) {
            if (it->seq == seq) {
                lanes = it->lanes;
                value = it->value;
                pending.erase(it);
                break;
            }
        }
        const LW<W> toggled = lw_and(lanes, lw_xor(cs.out, value));
        if (lw_none(toggled)) return;
        toggles_ += lw_popcount(toggled);
        if (cs.window_stamp == window_epoch_) {
            glitches_ += lw_popcount(lw_and(toggled, cs.window_toggled));
            lw_or_eq(cs.window_toggled, toggled);
        } else {
            cs.window_stamp = window_epoch_;
            cs.window_toggled = toggled;
        }
        lw_merge(cs.out, value, toggled);
        const LW<W>& out = cs.out;
        for (unsigned c = 0; c < W; ++c)
            if (toggled.w[c] != 0 && sinks_[c] != nullptr)
                sinks_[c]->on_toggle(cell, time, out.w[c], toggled.w[c]);
        const std::uint32_t fb = p_->fanout_begin[cell];
        const std::uint32_t fe = p_->fanout_begin[cell + 1];
        for (std::uint32_t f = fb; f < fe; ++f) {
            const CompiledProgram::FanoutEdge& edge = p_->fanout[f];
            push_pin_event(edge.cell, edge.pin, time + edge.wire_ps, toggled);
        }
    }

    void update_pin(CellId cell, std::uint8_t pin, TimePs time,
                    const LW<W>& mask) {
        // Per-edge FIFO delivery (fixed wire delay + seq tiebreak) means
        // the slot's masked bits still hold the source's pre-commit
        // value, so flipping exactly the toggled lanes reproduces the
        // merge of the committed value.
        const std::uint32_t base = p_->pin_base[cell];
        LW<W>& slot = pin_val_[base + pin];
        for (unsigned i = 0; i < W; ++i) slot.w[i] ^= mask.w[i];
        const netlist::CellKind kind = p_->kind[cell];
        if (kind == netlist::CellKind::Dff) return;

        const LW<W> value = eval_cell_lw<W>(kind, &pin_val_[base]);
        CellState& cs = cells_[cell];
        const LW<W> changed = lw_xor(value, cs.last_sched);
        if (lw_none(changed)) return;
        schedule_output(cell, value, changed, time + cs.gate_ps);
    }

    std::shared_ptr<const CompiledProgram> program_;
    const CompiledProgram* p_;

    std::vector<CellState> cells_;
    std::vector<LW<W>> pin_val_;

    std::vector<std::vector<Event>> buckets_;
    std::vector<std::uint64_t> occ_;
    std::size_t ring_mask_ = 0;
    std::size_t wheel_count_ = 0;
    std::size_t live_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> overflow_;

    BatchToggleSink* sinks_[W] = {};
    ChunkView views_[W];

    std::uint32_t seq_ = 0;
    TimePs now_ = 0;
    std::size_t processed_ = 0;

    std::uint64_t toggles_ = 0;
    std::uint64_t glitches_ = 0;
    std::uint64_t inertial_cancels_ = 0;
    std::uint64_t queue_peak_ = 0;
    std::uint32_t window_epoch_ = 1;
};

}  // namespace

std::unique_ptr<CompiledEngineBase> make_engine(
    std::shared_ptr<const CompiledProgram> program, unsigned chunks) {
    switch (chunks) {
        case 1:
            return std::make_unique<CompiledEngine<1>>(std::move(program));
        case 2:
            return std::make_unique<CompiledEngine<2>>(std::move(program));
        case 4:
            return std::make_unique<CompiledEngine<4>>(std::move(program));
        case 8:
            return std::make_unique<CompiledEngine<8>>(std::move(program));
        default:
            throw std::invalid_argument(
                "make_compiled_engine: chunks must be 1/2/4/8");
    }
}

}  // namespace GLITCHMASK_ENGINE_VARIANT
}  // namespace glitchmask::sim
