#include "eval/des_experiments.hpp"

#include <memory>

#include "core/sharing.hpp"
#include "eval/parallel_campaign.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace glitchmask::eval {

namespace {

power::PowerConfig des_power_config(sim::TimePs period) {
    power::PowerConfig config;
    config.bin_ps = period;
    return config;
}

/// Per-worker DES simulator replica over the shared netlist/delay-model.
struct DesWorker {
    sim::ClockedSim sim;
    power::PowerRecorder recorder;

    DesWorker(const des::MaskedDesCore& core, const sim::DelayModel& dm,
              sim::ClockConfig clock, sim::CouplingConfig coupling,
              power::PowerConfig power_config)
        : sim(core.nl(), dm, clock, coupling),
          recorder(core.nl(), power_config) {
        recorder.attach(&sim.engine());
        sim.engine().set_sink(&recorder);
    }
};

}  // namespace

DesTvlaResult run_des_tvla(const des::MaskedDesCore& core,
                           const DesTvlaConfig& config) {
    sim::DelayConfig delay_config = sim::DelayConfig::spartan6();
    delay_config.seed = config.placement_seed;
    const sim::DelayModel dm(core.nl(), delay_config);

    sim::ClockConfig clock;
    clock.period_ps = core.recommended_period();
    power::PowerConfig power_config = des_power_config(clock.period_ps);
    power_config.coupling_epsilon = config.coupling_epsilon;

    const std::size_t samples = core.total_cycles();

    struct BlockAcc {
        leakage::TvlaCampaign campaign;
        std::uint64_t toggles = 0;
    };

    ThreadPool pool(resolve_workers(config.workers));
    const ShardPlan plan{config.traces, config.block_size};
    BlockAcc merged = run_sharded(
        pool, plan,
        [&] {
            return std::make_unique<DesWorker>(core, dm, clock, config.coupling,
                                               power_config);
        },
        [&] {
            return BlockAcc{leakage::TvlaCampaign(samples, config.max_test_order),
                            0};
        },
        [&](std::unique_ptr<DesWorker>& worker, std::size_t trace_index,
            BlockAcc& acc) {
            Xoshiro256 rng = trace_rng(config.seed, kStimulusStream, trace_index);
            Xoshiro256 noise_rng = trace_rng(config.seed, kNoiseStream, trace_index);
            const bool fixed = rng.bit();
            const std::uint64_t pt = fixed ? config.fixed_plaintext : rng();

            worker->sim.restart();
            worker->recorder.begin_trace(samples);
            if (config.prng_on) {
                const core::MaskedWord mpt = core::mask_word(pt, 64, rng);
                const core::MaskedWord mkey =
                    core::mask_word(config.key, 64, rng);
                (void)core.encrypt(worker->sim, mpt, mkey, &rng);
            } else {
                (void)core.encrypt(worker->sim, core::MaskedWord{0, pt},
                                   core::MaskedWord{0, config.key}, nullptr);
            }
            const std::vector<double> trace =
                worker->recorder.noisy_trace(noise_rng, config.noise_sigma);
            acc.campaign.add_trace(fixed, trace);
            acc.toggles += worker->recorder.trace_toggles();
        },
        [](BlockAcc& into, const BlockAcc& from) {
            into.campaign.merge(from.campaign);
            into.toggles += from.toggles;
        });

    DesTvlaResult result(samples, config.max_test_order);
    result.samples = samples;
    result.traces = config.traces;
    result.toggles = merged.toggles;
    result.campaign = std::move(merged.campaign);
    for (int order = 1; order <= config.max_test_order; ++order)
        result.max_abs_t[order] =
            result.campaign.max_abs_t(order, &result.argmax[order]);
    return result;
}

std::vector<double> mean_power_trace(const des::MaskedDesCore& core,
                                     std::size_t traces, std::uint64_t seed,
                                     std::uint64_t placement_seed,
                                     unsigned workers) {
    sim::DelayConfig delay_config = sim::DelayConfig::spartan6();
    delay_config.seed = placement_seed;
    const sim::DelayModel dm(core.nl(), delay_config);
    sim::ClockConfig clock;
    clock.period_ps = core.recommended_period();
    const power::PowerConfig power_config = des_power_config(clock.period_ps);

    const std::size_t samples = core.total_cycles();
    ThreadPool pool(resolve_workers(workers));
    const ShardPlan plan{traces, /*block_size=*/64};
    std::vector<double> mean = run_sharded(
        pool, plan,
        [&] {
            return std::make_unique<DesWorker>(core, dm, clock,
                                               sim::CouplingConfig{},
                                               power_config);
        },
        [&] { return std::vector<double>(samples, 0.0); },
        [&](std::unique_ptr<DesWorker>& worker, std::size_t trace_index,
            std::vector<double>& acc) {
            Xoshiro256 rng = trace_rng(seed, kStimulusStream, trace_index);
            worker->sim.restart();
            worker->recorder.begin_trace(samples);
            const std::uint64_t pt = rng();
            const std::uint64_t key = rng();
            (void)core.encrypt_value(worker->sim, pt, key, &rng);
            const std::vector<double>& trace = worker->recorder.trace();
            for (std::size_t i = 0; i < samples; ++i) acc[i] += trace[i];
        },
        [](std::vector<double>& into, const std::vector<double>& from) {
            for (std::size_t i = 0; i < into.size(); ++i) into[i] += from[i];
        });
    for (double& v : mean) v /= static_cast<double>(traces);
    return mean;
}

}  // namespace glitchmask::eval
