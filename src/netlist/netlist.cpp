#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace glitchmask::netlist {

Netlist::Netlist() {
    module_names_.emplace_back("");  // module 0: top
}

std::string Netlist::scoped_name(std::string_view name) const {
    if (name.empty()) return {};
    if (scope_prefix_.empty()) return std::string(name);
    std::string full = scope_prefix_;
    full += name;
    return full;
}

CellId Netlist::add(CellKind kind, NetId a, NetId b, NetId c,
                    std::string_view name) {
    frozen_ = false;
    const CellId id = static_cast<CellId>(cells_.size());
    Cell cell;
    cell.kind = kind;
    cell.module = current_module_;
    cell.in = {a, b, c};
    const unsigned pins = pin_count(kind);
    for (unsigned p = 0; p < pins; ++p) {
        if (cell.in[p] == kNoNet)
            throw std::runtime_error("Netlist::add: unconnected pin on cell " +
                                     std::string(kind_name(kind)));
        if (cell.in[p] >= id)
            // Forward references are allowed only for flop D pins rewired
            // later; keep construction strictly feed-forward for clarity.
            throw std::runtime_error("Netlist::add: pin references unknown net");
    }
    cells_.push_back(cell);
    names_.push_back(scoped_name(name));
    if (kind == CellKind::Input) inputs_.push_back(id);
    if (kind == CellKind::Dff) flops_.push_back(id);
    return id;
}

NetId Netlist::input(std::string_view name) { return add(CellKind::Input, kNoNet, kNoNet, kNoNet, name); }

NetId Netlist::const0() {
    if (const0_ == kNoNet) const0_ = add(CellKind::Const0);
    return const0_;
}

NetId Netlist::const1() {
    if (const1_ == kNoNet) const1_ = add(CellKind::Const1);
    return const1_;
}

NetId Netlist::buf(NetId a, std::string_view name) { return add(CellKind::Buf, a, kNoNet, kNoNet, name); }
NetId Netlist::inv(NetId a, std::string_view name) { return add(CellKind::Inv, a, kNoNet, kNoNet, name); }
NetId Netlist::delay_buf(NetId a, std::string_view name) { return add(CellKind::DelayBuf, a, kNoNet, kNoNet, name); }
NetId Netlist::and2(NetId a, NetId b, std::string_view name) { return add(CellKind::And2, a, b, kNoNet, name); }
NetId Netlist::nand2(NetId a, NetId b, std::string_view name) { return add(CellKind::Nand2, a, b, kNoNet, name); }
NetId Netlist::or2(NetId a, NetId b, std::string_view name) { return add(CellKind::Or2, a, b, kNoNet, name); }
NetId Netlist::nor2(NetId a, NetId b, std::string_view name) { return add(CellKind::Nor2, a, b, kNoNet, name); }
NetId Netlist::xor2(NetId a, NetId b, std::string_view name) { return add(CellKind::Xor2, a, b, kNoNet, name); }
NetId Netlist::xnor2(NetId a, NetId b, std::string_view name) { return add(CellKind::Xnor2, a, b, kNoNet, name); }
NetId Netlist::orn2(NetId a, NetId b, std::string_view name) { return add(CellKind::Orn2, a, b, kNoNet, name); }
NetId Netlist::secand3(NetId a, NetId b, NetId c, std::string_view name) { return add(CellKind::SecAnd3, a, b, c, name); }
NetId Netlist::mux2(NetId in0, NetId in1, NetId sel, std::string_view name) {
    return add(CellKind::Mux2, in0, in1, sel, name);
}

NetId Netlist::dff(NetId d, CtrlGroup enable, CtrlGroup reset,
                   std::string_view name) {
    const CellId id = add(CellKind::Dff, d, kNoNet, kNoNet, name);
    cells_[id].enable = enable;
    cells_[id].reset = reset;
    max_ctrl_ = std::max({max_ctrl_, enable, reset});
    return id;
}

NetId Netlist::dff_floating(CtrlGroup enable, CtrlGroup reset,
                            std::string_view name) {
    frozen_ = false;
    const CellId id = static_cast<CellId>(cells_.size());
    Cell cell;
    cell.kind = CellKind::Dff;
    cell.module = current_module_;
    cell.enable = enable;
    cell.reset = reset;
    cells_.push_back(cell);
    names_.push_back(scoped_name(name));
    flops_.push_back(id);
    max_ctrl_ = std::max({max_ctrl_, enable, reset});
    return id;
}

void Netlist::connect_flop(CellId flop, NetId d) {
    frozen_ = false;
    if (flop >= cells_.size() || cells_[flop].kind != CellKind::Dff)
        throw std::runtime_error("Netlist::connect_flop: not a flop");
    if (d >= cells_.size())
        throw std::runtime_error("Netlist::connect_flop: unknown net");
    cells_[flop].in[0] = d;
}

void Netlist::couple(NetId a, NetId b) {
    if (a >= cells_.size() || b >= cells_.size() || a == b)
        throw std::runtime_error("Netlist::couple: invalid net pair");
    coupled_.push_back({a, b});
}

void Netlist::push_scope(std::string_view name) {
    scope_stack_.emplace_back(name);
    scope_prefix_ += name;
    scope_prefix_ += '/';
    module_names_.push_back(scope_prefix_);
    current_module_ = static_cast<std::uint32_t>(module_names_.size() - 1);
}

void Netlist::pop_scope() {
    assert(!scope_stack_.empty());
    const std::size_t cut = scope_stack_.back().size() + 1;
    scope_prefix_.resize(scope_prefix_.size() - cut);
    scope_stack_.pop_back();
    // Restore the enclosing module id: find (or recreate) its name entry.
    if (scope_prefix_.empty()) {
        current_module_ = 0;
        return;
    }
    for (std::size_t m = module_names_.size(); m-- > 0;) {
        if (module_names_[m] == scope_prefix_) {
            current_module_ = static_cast<std::uint32_t>(m);
            return;
        }
    }
    module_names_.push_back(scope_prefix_);
    current_module_ = static_cast<std::uint32_t>(module_names_.size() - 1);
}

void Netlist::freeze() {
    if (frozen_) return;

    for (const CellId flop : flops_)
        if (cells_[flop].in[0] == kNoNet)
            throw std::runtime_error("Netlist::freeze: unconnected flop D pin (" +
                                     names_[flop] + ")");

    // Fanout lists (counting sort by driver).
    fanout_offset_.assign(cells_.size() + 1, 0);
    for (const Cell& cell : cells_) {
        const unsigned pins = pin_count(cell.kind);
        for (unsigned p = 0; p < pins; ++p) ++fanout_offset_[cell.in[p] + 1];
    }
    for (std::size_t i = 1; i < fanout_offset_.size(); ++i)
        fanout_offset_[i] += fanout_offset_[i - 1];
    fanout_flat_.resize(fanout_offset_.back());
    std::vector<std::uint32_t> cursor(fanout_offset_.begin(),
                                      fanout_offset_.end() - 1);
    for (CellId id = 0; id < cells_.size(); ++id) {
        const Cell& cell = cells_[id];
        const unsigned pins = pin_count(cell.kind);
        for (unsigned p = 0; p < pins; ++p)
            fanout_flat_[cursor[cell.in[p]]++] = {id, static_cast<std::uint8_t>(p)};
    }

    // Topological order of combinational cells.  Because add() enforces
    // that pins reference already-created cells, creation order *is* a
    // topological order; we only filter out sources (inputs, constants,
    // flops).  A combinational cycle is therefore impossible by
    // construction, which we assert by re-checking pin ordering.
    topo_.clear();
    topo_.reserve(cells_.size());
    for (CellId id = 0; id < cells_.size(); ++id) {
        const Cell& cell = cells_[id];
        switch (cell.kind) {
            case CellKind::Input:
            case CellKind::Const0:
            case CellKind::Const1:
            case CellKind::Dff:
                break;
            default:
                topo_.push_back(id);
                break;
        }
    }
    frozen_ = true;
}

std::span<const Sink> Netlist::fanout(NetId id) const noexcept {
    assert(frozen_);
    const std::uint32_t begin = fanout_offset_[id];
    const std::uint32_t end = fanout_offset_[id + 1];
    return {fanout_flat_.data() + begin, end - begin};
}

std::array<std::size_t, kNumCellKinds> Netlist::kind_histogram() const {
    std::array<std::size_t, kNumCellKinds> histogram{};
    for (const Cell& cell : cells_) ++histogram[static_cast<std::size_t>(cell.kind)];
    return histogram;
}

}  // namespace glitchmask::netlist
