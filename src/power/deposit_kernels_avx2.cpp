// AVX2 deposit kernels: 4 lanes per vector, 16 groups per 64-lane mask.
//
// Bit-identity discipline: toggled lanes get exactly one double add in
// the same order as the scalar walk (each lane is independent, so "order"
// is per-lane and trivially preserved); untouched lanes are rewritten
// with their original bit pattern via blendv, never recomputed.  Counter
// bumps subtract the all-ones lane mask (-1) from the counter vector.
// Compiled with -mavx2 -ffp-contract=off (see deposit_kernels.hpp).
#include "power/deposit_kernels.hpp"

#if defined(GLITCHMASK_HAVE_AVX2)

#include <immintrin.h>

namespace glitchmask::power::kernels {

namespace {

/// All-ones 64-bit element for every set bit of the low nibble of
/// `bits`: broadcast, AND with {1,2,4,8}, compare-equal.
inline __m256i nibble_mask(std::uint64_t bits) noexcept {
    const __m256i select = _mm256_set_epi64x(8, 4, 2, 1);
    const __m256i b = _mm256_set1_epi64x(static_cast<long long>(bits & 15u));
    return _mm256_cmpeq_epi64(_mm256_and_si256(b, select), select);
}

}  // namespace

void deposit_avx2(double* row, std::uint64_t* lane_toggles,
                  std::uint64_t toggled, double weight) {
    const __m256d w = _mm256_set1_pd(weight);
    for (unsigned g = 0; g < 16; ++g) {
        const std::uint64_t bits = (toggled >> (4 * g)) & 15u;
        if (bits == 0) continue;
        const __m256i m = nibble_mask(bits);
        __m256i cnt = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(lane_toggles + 4 * g));
        cnt = _mm256_sub_epi64(cnt, m);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(lane_toggles + 4 * g),
                            cnt);
        const __m256d v = _mm256_loadu_pd(row + 4 * g);
        const __m256d added = _mm256_add_pd(v, w);
        _mm256_storeu_pd(row + 4 * g,
                         _mm256_blendv_pd(v, added, _mm256_castsi256_pd(m)));
    }
}

void deposit_coupled_avx2(double* row, std::uint64_t* lane_toggles,
                          std::uint64_t toggled, std::uint64_t opposite,
                          double weight, double eps) {
    const __m256d w = _mm256_set1_pd(weight);
    const __m256d pos = _mm256_set1_pd(eps);
    const __m256d neg = _mm256_set1_pd(-eps);
    for (unsigned g = 0; g < 16; ++g) {
        const std::uint64_t bits = (toggled >> (4 * g)) & 15u;
        if (bits == 0) continue;
        const __m256i m = nibble_mask(bits);
        __m256i cnt = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(lane_toggles + 4 * g));
        cnt = _mm256_sub_epi64(cnt, m);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(lane_toggles + 4 * g),
                            cnt);
        const __m256i om = nibble_mask(opposite >> (4 * g));
        // weight + (+-eps): one add, then the deposit add -- two double
        // adds per lane, same as the scalar expression.
        const __m256d addend =
            _mm256_add_pd(w, _mm256_blendv_pd(neg, pos, _mm256_castsi256_pd(om)));
        const __m256d v = _mm256_loadu_pd(row + 4 * g);
        const __m256d added = _mm256_add_pd(v, addend);
        _mm256_storeu_pd(row + 4 * g,
                         _mm256_blendv_pd(v, added, _mm256_castsi256_pd(m)));
    }
}

void count_avx2(std::uint64_t* lane_toggles, std::uint64_t toggled) {
    for (unsigned g = 0; g < 16; ++g) {
        const std::uint64_t bits = (toggled >> (4 * g)) & 15u;
        if (bits == 0) continue;
        const __m256i m = nibble_mask(bits);
        __m256i cnt = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(lane_toggles + 4 * g));
        cnt = _mm256_sub_epi64(cnt, m);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(lane_toggles + 4 * g),
                            cnt);
    }
}

}  // namespace glitchmask::power::kernels

#endif  // GLITCHMASK_HAVE_AVX2
